// Observability end-to-end properties:
//   1. Golden file: with metrics off, the experiment JSON is byte-identical
//      to the output captured before the instrumentation layer existed.
//   2. Turning MTS_METRICS/MTS_TRACE on changes ZERO table/JSON bytes — the
//      knobs only add side-channel files — while the registry fills with
//      pipeline counters and hierarchical phases.
//   3. MTS_TIMING=0 zeroes every phase duration in the snapshot; counts
//      stay exact.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/timer.hpp"
#include "exp/json_report.hpp"
#include "exp/table_runner.hpp"
#include "obs/metrics.hpp"

namespace mts::exp {
namespace {

/// Matches the seed run that produced the checked-in golden file
/// (bench/table02 with MTS_SCALE=0.2 MTS_TRIALS=3 MTS_PATH_RANK=10
/// MTS_SEED=11 MTS_TIMING=0).
RunConfig golden_config() {
  RunConfig config;
  config.city = citygen::City::Boston;
  config.weight = attack::WeightType::Length;
  config.scale = 0.2;
  config.trials = 3;
  config.path_rank = 10;
  config.seed = 11;
  config.deterministic_timing = true;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    obs::MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    obs::MetricsRegistry::instance().reset();
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    set_timing_enabled(true);
  }
};

TEST_F(ObservabilityTest, MetricsOffMatchesPrePrGoldenFile) {
  const auto result = run_city_table(golden_config());
  const std::string golden =
      read_file(std::string(MTS_TEST_GOLDEN_DIR) + "/table02_boston_length_small.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(to_json(result), golden);
}

TEST_F(ObservabilityTest, EnablingObservabilityChangesNoOutputBytes) {
  const auto baseline = run_city_table(golden_config());
  const std::string baseline_json = to_json(baseline);
  std::ostringstream baseline_csv;
  render_city_table(baseline).render_csv(baseline_csv);

  obs::set_trace_enabled(true);  // implies metrics
  const auto instrumented = run_city_table(golden_config());
  std::ostringstream instrumented_csv;
  render_city_table(instrumented).render_csv(instrumented_csv);

  EXPECT_EQ(to_json(instrumented), baseline_json);
  EXPECT_EQ(instrumented_csv.str(), baseline_csv.str());

  // The run was genuinely instrumented: pipeline counters are nonzero and
  // the phase hierarchy covers attack -> oracle -> dijkstra.
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  std::uint64_t yen_pushed = 0;
  std::uint64_t lp_solves = 0;
  std::uint64_t oracle_calls = 0;
  for (const auto& counter : snap.counters) {
    if (counter.name == "yen.candidates_pushed") yen_pushed = counter.value;
    if (counter.name == "lp.solves") lp_solves = counter.value;
    if (counter.name == "oracle.calls") oracle_calls = counter.value;
  }
  EXPECT_GT(yen_pushed, 0u);
  EXPECT_GT(lp_solves, 0u);
  EXPECT_GT(oracle_calls, 0u);
  bool found_oracle_dijkstra = false;
  for (const auto& phase : snap.phases) {
    if (phase.path == "cell/attack/oracle/dijkstra") found_oracle_dijkstra = true;
  }
  EXPECT_TRUE(found_oracle_dijkstra);
  EXPECT_FALSE(obs::MetricsRegistry::instance().trace_events().empty());
}

TEST_F(ObservabilityTest, TimingOffZeroesAllPhaseSeconds) {
  obs::set_metrics_enabled(true);
  set_timing_enabled(false);
  (void)run_city_table(golden_config());
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  ASSERT_FALSE(snap.phases.empty());
  for (const auto& phase : snap.phases) {
    EXPECT_EQ(phase.seconds, 0.0) << phase.path;
    EXPECT_GT(phase.count, 0u) << phase.path;
  }
}

}  // namespace
}  // namespace mts::exp
