// Parallel determinism property tests: the experiment harness must produce
// bit-identical scenarios, tables, and JSON at every thread count.  This is
// also the parallel workload the TSan ctest run exercises.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "citygen/generate.hpp"
#include "core/thread_pool.hpp"
#include "exp/json_report.hpp"
#include "exp/table_runner.hpp"

namespace mts::exp {
namespace {

using attack::WeightType;
using citygen::City;

RunConfig small_config() {
  RunConfig config;
  config.city = City::Chicago;
  config.scale = 0.2;
  config.weight = WeightType::Time;
  config.trials = 3;
  config.path_rank = 10;
  config.seed = 11;
  // Wall-clock columns are inherently nondeterministic; zero them so the
  // rendered bytes can be compared across thread counts.
  config.deterministic_timing = true;
  return config;
}

/// Everything a table run emits, as one string: both renderings + JSON.
std::string run_fingerprint(std::size_t threads) {
  set_num_threads(threads);
  const auto result = run_city_table(small_config());
  set_num_threads(0);
  std::ostringstream out;
  render_city_table(result).render_csv(out);
  render_city_table_detailed(result).render_csv(out);
  out << to_json(result) << '\n';
  return out.str();
}

TEST(ParallelDeterminism, CityTableBytesIdenticalAtAnyThreadCount) {
  const std::string serial = run_fingerprint(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"scenarios_run\":3"), std::string::npos) << serial;
  EXPECT_EQ(serial, run_fingerprint(2));
  EXPECT_EQ(serial, run_fingerprint(8));
}

TEST(ParallelDeterminism, ScenarioSamplingIdenticalAtAnyThreadCount) {
  const auto network = citygen::generate_city(City::Chicago, 0.2, 8);
  const auto weights = attack::make_weights(network, WeightType::Time);
  ScenarioOptions options;
  options.path_rank = 8;
  const auto sample = [&](std::size_t threads) {
    set_num_threads(threads);
    auto scenarios = sample_scenarios(network, weights, 4, 99, options);
    set_num_threads(0);
    return scenarios;
  };
  const auto serial = sample(1);
  ASSERT_GE(serial.size(), 2u);
  for (std::size_t threads : {2u, 8u}) {
    const auto parallel = sample(threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].source, serial[i].source) << i;
      EXPECT_EQ(parallel[i].target, serial[i].target) << i;
      EXPECT_EQ(parallel[i].hospital, serial[i].hospital) << i;
      EXPECT_EQ(parallel[i].p_star.edges, serial[i].p_star.edges) << i;
      EXPECT_EQ(parallel[i].prefix.size(), serial[i].prefix.size()) << i;
    }
  }
}

TEST(ParallelDeterminism, SeedChangesTheTable) {
  // Sanity check that the fingerprint is sensitive at all: a different
  // seed must change the sampled scenarios and thus the table bytes.
  set_num_threads(2);
  auto config = small_config();
  const auto base = run_city_table(config);
  config.seed = 12;
  const auto other = run_city_table(config);
  set_num_threads(0);
  EXPECT_NE(to_json(base), to_json(other));
}

}  // namespace
}  // namespace mts::exp
