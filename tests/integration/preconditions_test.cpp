// Every public API that documents a precondition must reject bad input
// with PreconditionViolation carrying file:line context — not UB, not a
// crash three layers deeper.  One test block per module; each case feeds
// exactly one violated precondition to an otherwise-valid call.
#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "attack/algorithms.hpp"
#include "attack/area_isolation.hpp"
#include "attack/defense.hpp"
#include "attack/exact.hpp"
#include "attack/interdiction.hpp"
#include "attack/multi_victim.hpp"
#include "attack/oracle.hpp"
#include "citygen/generate.hpp"
#include "citygen/spec.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"
#include "graph/astar.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/betweenness.hpp"
#include "graph/bidirectional.hpp"
#include "graph/connectivity.hpp"
#include "graph/contraction_hierarchy.hpp"
#include "graph/dijkstra.hpp"
#include "graph/eigen.hpp"
#include "graph/maxflow.hpp"
#include "graph/metrics.hpp"
#include "graph/spatial_index.hpp"
#include "graph/turn_expansion.hpp"
#include "graph/yen.hpp"
#include "lp/simplex.hpp"
#include "osm/road_network.hpp"
#include "osm/xml.hpp"
#include "sim/traffic_sim.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

/// Runs `fn`, asserting it throws PreconditionViolation whose message
/// contains `fragment` and the "<file>:<line>: " prefix mts::require adds.
template <typename Fn>
void expect_precondition(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    ADD_FAILURE() << "expected PreconditionViolation containing \"" << fragment << "\"";
  } catch (const PreconditionViolation& error) {
    const std::string what = error.what();
    EXPECT_TRUE(std::regex_search(what, std::regex(R"(\.[ch]pp:\d+: )")))
        << "missing file:line context: " << what;
    EXPECT_NE(what.find(fragment), std::string::npos)
        << "expected \"" << fragment << "\" in: " << what;
  } catch (const std::exception& error) {
    ADD_FAILURE() << "wrong exception type: " << error.what();
  }
}

TEST(Preconditions, DiGraph) {
  DiGraph g;
  g.add_node();
  expect_precondition([&] { g.add_edge(NodeId(0), NodeId(7)); }, "add_edge");
  expect_precondition([&] { static_cast<void>(g.out_edges(NodeId(0))); }, "not finalized");
  expect_precondition([&] { static_cast<void>(g.in_edges(NodeId(0))); }, "not finalized");
}

TEST(Preconditions, Dijkstra) {
  test::Diamond d;
  DiGraph unfinalized;
  unfinalized.add_node();
  expect_precondition([&] { dijkstra(unfinalized, {}, NodeId(0)); }, "not finalized");

  const std::vector<double> short_weights(2, 1.0);
  expect_precondition([&] { dijkstra(d.wg.g, short_weights, d.s); }, "size mismatch");
  expect_precondition([&] { dijkstra(d.wg.g, d.wg.weights, NodeId(99)); }, "out of range");

  DijkstraOptions options;
  const std::vector<std::uint8_t> bad_mask(1, 0);
  options.banned_nodes = &bad_mask;
  expect_precondition([&] { dijkstra(d.wg.g, d.wg.weights, d.s, options); }, "ban mask");

  auto negative = d.wg.weights;
  negative[d.sa.value()] = -1.0;
  expect_precondition([&] { shortest_path(d.wg.g, negative, d.s, d.t); }, "negative");
}

TEST(Preconditions, AStar) {
  test::Diamond d;
  const auto h = euclidean_heuristic(d.wg.g, d.t);
  const std::vector<double> short_weights(2, 1.0);
  expect_precondition([&] { astar(d.wg.g, short_weights, d.s, d.t, h); }, "size mismatch");
  expect_precondition([&] { astar(d.wg.g, d.wg.weights, NodeId(99), d.t, h); }, "out of range");
  expect_precondition([&] { max_admissible_rate(d.wg.g, short_weights); }, "size mismatch");

  auto negative = d.wg.weights;
  negative[d.sa.value()] = -0.5;
  expect_precondition([&] { astar(d.wg.g, negative, d.s, d.t, h); }, "negative");
}

TEST(Preconditions, BidirectionalAndBellmanFord) {
  test::Diamond d;
  const std::vector<double> short_weights(2, 1.0);
  expect_precondition([&] { bidirectional_shortest_path(d.wg.g, short_weights, d.s, d.t); },
                      "size mismatch");
  expect_precondition(
      [&] { bidirectional_shortest_path(d.wg.g, d.wg.weights, d.s, NodeId(42)); },
      "out of range");
  expect_precondition([&] { bellman_ford(d.wg.g, short_weights, d.s); }, "size mismatch");

  auto negative = d.wg.weights;
  negative[d.st.value()] = -2.0;
  expect_precondition([&] { bellman_ford(d.wg.g, negative, d.s); }, "negative");
}

TEST(Preconditions, YenAndSecondShortest) {
  test::Diamond d;
  DiGraph unfinalized;
  unfinalized.add_node();
  expect_precondition([&] { yen_ksp(unfinalized, {}, NodeId(0), NodeId(0), 3); },
                      "not finalized");
  expect_precondition([&] { yen_ksp(d.wg.g, d.wg.weights, d.s, NodeId(9), 3); },
                      "out of range");
  expect_precondition([&] { yen_ksp(d.wg.g, d.wg.weights, d.s, d.s, 3); },
                      "source == target");

  expect_precondition(
      [&] { second_shortest_path(d.wg.g, d.wg.weights, d.s, d.t, Path{}); },
      "avoid path is empty");
  const Path from_a{{d.at}, 1.0};
  expect_precondition(
      [&] { second_shortest_path(d.wg.g, d.wg.weights, d.s, d.t, from_a); },
      "does not start at source");
}

TEST(Preconditions, CentralityAndConnectivity) {
  test::Diamond d;
  DiGraph unfinalized;
  unfinalized.add_node();
  const std::vector<double> short_weights(2, 1.0);
  expect_precondition([&] { edge_betweenness(d.wg.g, short_weights); }, "size mismatch");
  expect_precondition([&] { eigenvector_centrality(unfinalized); }, "not finalized");
  expect_precondition([&] { reachable_from(unfinalized, NodeId(0)); }, "not finalized");
  expect_precondition([&] { strongly_connected_components(unfinalized); }, "not finalized");
}

TEST(Preconditions, MaxFlow) {
  test::Diamond d;
  const std::vector<double> short_caps(2, 1.0);
  expect_precondition([&] { max_flow(d.wg.g, short_caps, d.s, d.t); }, "size mismatch");
  expect_precondition([&] { max_flow(d.wg.g, d.wg.weights, d.s, d.s); }, "source == sink");

  auto negative = d.wg.weights;
  negative[d.sb.value()] = -1.0;
  expect_precondition([&] { max_flow(d.wg.g, negative, d.s, d.t); }, "negative capacity");
}

TEST(Preconditions, ContractionHierarchy) {
  test::Diamond d;
  DiGraph unfinalized;
  unfinalized.add_node();
  const std::vector<double> short_weights(2, 1.0);
  expect_precondition([&] { ContractionHierarchy::build(unfinalized, {}); }, "not finalized");
  expect_precondition([&] { ContractionHierarchy::build(d.wg.g, short_weights); },
                      "size mismatch");

  auto negative = d.wg.weights;
  negative[d.at.value()] = -1.0;
  expect_precondition([&] { ContractionHierarchy::build(d.wg.g, negative); }, "negative");

  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  expect_precondition([&] { static_cast<void>(ch.query(d.s, NodeId(50))); }, "out of range");
}

TEST(Preconditions, TurnExpansion) {
  test::Diamond d;
  expect_precondition([&] { classify_turn(d.wg.g, d.sa, d.bt); }, "do not meet");

  const std::vector<double> short_weights(2, 1.0);
  expect_precondition(
      [&] { TurnAwareRouter(d.wg.g, short_weights, standard_turn_policy(d.wg.g)); },
      "size mismatch");

  const TurnAwareRouter router(d.wg.g, d.wg.weights, standard_turn_policy(d.wg.g));
  expect_precondition([&] { static_cast<void>(router.shortest_path(d.s, NodeId(77))); },
                      "out of range");

  const auto negative_policy = [](EdgeId, EdgeId) { return std::optional<double>(-1.0); };
  expect_precondition([&] { TurnAwareRouter(d.wg.g, d.wg.weights, negative_policy); },
                      "negative turn penalty");
}

TEST(Preconditions, SpatialIndex) {
  expect_precondition([] { PointGrid({}, 0.0); }, "cell size");
  expect_precondition([] { SegmentGrid({}, -1.0); }, "cell size");
}

TEST(Preconditions, Metrics) {
  DiGraph unfinalized;
  unfinalized.add_node();
  expect_precondition([&] { compute_network_metrics(unfinalized); }, "not finalized");
  expect_precondition([] { orientation_order({10.0, 20.0}, 1); }, "at least 2 bins");
}

TEST(Preconditions, Simplex) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  expect_precondition([&] { lp.add_constraint({0, 1}, {1.0}, Relation::GreaterEqual, 1.0); },
                      "size mismatch");

  lp.add_constraint({0, 5}, {1.0, 1.0}, Relation::GreaterEqual, 1.0);
  expect_precondition([&] { solve_lp(lp); }, "index out of range");

  LpProblem bad_objective;
  bad_objective.num_vars = 3;
  bad_objective.objective = {1.0};
  expect_precondition([&] { solve_lp(bad_objective); }, "objective size mismatch");
}

TEST(Preconditions, CoreUtilities) {
  Rng rng(7);
  expect_precondition([&] { rng.uniform_int(5, 2); }, "empty range");
  expect_precondition([&] { rng.uniform_index(0); }, "must be positive");

  expect_precondition([] { percentile({}, 0.5); }, "empty sample");
  expect_precondition([] { percentile({1.0, 2.0}, 1.5); }, "must be in [0, 1]");

  expect_precondition([] { Table("t", {}); }, "at least one column");
  Table table("t", {"a", "b"});
  expect_precondition([&] { table.add_row({"only-one"}); }, "row width mismatch");
}

TEST(Preconditions, CitygenSpecs) {
  expect_precondition([] { citygen::city_spec(citygen::City::Boston, 0.0); },
                      "scale must be positive");
  expect_precondition([] { citygen::latticeness_spec(1.5); }, "must be in [0, 1]");
}

TEST(Preconditions, OsmLayer) {
  // An empty path can never be opened, even by privileged users (an
  // unwritable directory could be created by save_osm_xml or bypassed
  // when the tests run as root).
  expect_precondition([] { osm::load_osm_xml(""); }, "cannot open");
  expect_precondition([] { osm::save_osm_xml({}, ""); }, "cannot open");

  osm::BuildOptions options;
  options.endpoint_snap_fraction = 0.75;
  expect_precondition([&] { osm::RoadNetwork::build({}, options); }, "endpoint_snap_fraction");
}

/// One small attack instance shared by the attack-precondition cases.
struct AttackFixture {
  test::WeightedGraph wg;
  std::vector<double> costs;
  attack::ForcePathCutProblem problem;

  AttackFixture() {
    wg = test::make_grid(3, 3);
    costs.assign(wg.g.num_edges(), 1.0);
    const auto ranked = yen_ksp(wg.g, wg.weights, NodeId(0), NodeId(8), 3);
    problem.graph = &wg.g;
    problem.weights = wg.weights;
    problem.costs = costs;
    problem.source = NodeId(0);
    problem.target = NodeId(8);
    problem.p_star = ranked.back();
    problem.seed_paths.assign(ranked.begin(), ranked.end() - 1);
  }
};

TEST(Preconditions, AttackAlgorithms) {
  AttackFixture fx;

  auto null_graph = fx.problem;
  null_graph.graph = nullptr;
  expect_precondition([&] { attack::run_attack(attack::Algorithm::GreedyEdge, null_graph); },
                      "null graph");

  auto bad_weights = fx.problem;
  const std::vector<double> short_vector(2, 1.0);
  bad_weights.weights = short_vector;
  expect_precondition([&] { attack::run_attack(attack::Algorithm::GreedyEdge, bad_weights); },
                      "size mismatch");

  auto bad_costs = fx.problem;
  bad_costs.costs = short_vector;
  expect_precondition([&] { attack::run_attack(attack::Algorithm::GreedyEdge, bad_costs); },
                      "costs size mismatch");

  auto bad_mask = fx.problem;
  bad_mask.protected_edges.assign(3, 0);
  expect_precondition([&] { attack::run_attack(attack::Algorithm::GreedyEdge, bad_mask); },
                      "protected_edges size mismatch");

  auto negative_costs = fx.problem;
  auto costs = fx.costs;
  costs[fx.problem.p_star.edges.front().value()] = -1.0;  // the checked subset
  negative_costs.costs = costs;
  expect_precondition(
      [&] { attack::run_attack(attack::Algorithm::GreedyEdge, negative_costs); },
      "negative cost");

  expect_precondition([&] { attack::run_exact_attack(null_graph); }, "null graph");
}

TEST(Preconditions, AttackOracle) {
  AttackFixture fx;

  auto null_graph = fx.problem;
  null_graph.graph = nullptr;
  expect_precondition([&] { attack::ExclusivityOracle oracle(null_graph); }, "null graph");

  auto broken_p_star = fx.problem;
  broken_p_star.p_star.edges.pop_back();  // no longer ends at the target
  expect_precondition([&] { attack::ExclusivityOracle oracle(broken_p_star); },
                      "not a simple");
}

TEST(Preconditions, AreaIsolationAndInterdiction) {
  AttackFixture fx;
  const auto& g = fx.wg.g;
  std::vector<std::uint8_t> area(g.num_nodes(), 0);
  area[4] = 1;

  const std::vector<double> short_costs(2, 1.0);
  expect_precondition([&] { attack::isolate_area(g, short_costs, area); },
                      "costs size mismatch");
  const std::vector<std::uint8_t> bad_area(2, 0);
  expect_precondition([&] { attack::isolate_area(g, fx.costs, bad_area); },
                      "area mask size mismatch");
  expect_precondition([&] { attack::nodes_within_radius(g, NodeId(99), 10.0); },
                      "out of range");

  expect_precondition(
      [&] {
        attack::interdict_route(g, fx.wg.weights, fx.costs, NodeId(0), NodeId(8), -1.0);
      },
      "negative budget");
  expect_precondition(
      [&] { attack::interdict_route(g, fx.wg.weights, short_costs, NodeId(0), NodeId(8), 5.0); },
      "costs size mismatch");
}

TEST(Preconditions, DefenseAndMultiVictim) {
  AttackFixture fx;

  auto null_graph = fx.problem;
  null_graph.graph = nullptr;
  expect_precondition([&] { attack::harden_against_force_path_cut(null_graph, 2); },
                      "null graph");

  auto already_masked = fx.problem;
  already_masked.protected_edges.assign(fx.wg.g.num_edges(), 0);
  expect_precondition([&] { attack::harden_against_force_path_cut(already_masked, 2); },
                      "already carries a protection mask");

  attack::MultiVictimProblem multi;
  multi.graph = &fx.wg.g;
  multi.weights = fx.problem.weights;
  multi.costs = fx.problem.costs;
  expect_precondition([&] { attack::run_multi_victim_attack(multi); }, "no victims");

  multi.graph = nullptr;
  expect_precondition([&] { attack::run_multi_victim_attack(multi); }, "null graph");
}

TEST(Preconditions, SimAndScenario) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.15, 5);
  const NodeId s = network.intersection_nodes().front();
  const NodeId t = network.pois().front().node;

  sim::SimOptions bad_step;
  bad_step.time_step_s = 0.0;
  expect_precondition([&] { sim::TrafficSimulation sim(network, bad_step); },
                      "time step must be positive");

  sim::TrafficSimulation sim(network);
  expect_precondition([&] { sim.add_vehicle({NodeId(1u << 30), t, 0.0}); }, "out of range");
  expect_precondition([&] { sim.add_closure(EdgeId(1u << 30), 0.0); }, "out of range");
  static_cast<void>(s);

  Rng rng(3);
  const std::vector<double> lengths = network.edge_lengths();
  exp::ScenarioOptions options;
  options.path_rank = 0;
  expect_precondition([&] { exp::sample_scenario(network, lengths, 0, rng, options); },
                      "path_rank");
  expect_precondition([&] { exp::sample_scenario(network, lengths, 99, rng); },
                      "hospital index out of range");
}

}  // namespace
}  // namespace mts
