#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

namespace mts::cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "mts_cli_test";
    std::filesystem::create_directories(dir_);
    osm_path_ = (dir_ / "city.osm").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run(std::initializer_list<std::string> args) {
    out_.str("");
    err_.str("");
    return run_cli(std::vector<std::string>(args), out_, err_);
  }

  /// Generates a small city once for the commands that need one.
  void generate() {
    ASSERT_EQ(run({"generate", "--city", "chicago", "--scale", "0.15", "--seed", "5", "--out",
                   osm_path_}),
              0)
        << err_.str();
  }

  std::filesystem::path dir_;
  std::string osm_path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, NoArgsPrintsUsageAndFails) {
  EXPECT_EQ(run({}), 1);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  EXPECT_EQ(run({"help"}), 0);
  EXPECT_NE(out_.str().find("generate"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(run({"frobnicate"}), 1);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesOsmFile) {
  generate();
  EXPECT_TRUE(std::filesystem::exists(osm_path_));
  EXPECT_NE(out_.str().find("wrote"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsBadCity) {
  EXPECT_EQ(run({"generate", "--city", "atlantis", "--out", osm_path_}), 1);
  EXPECT_NE(err_.str().find("unknown city"), std::string::npos);
}

TEST_F(CliTest, GenerateRequiresOut) {
  EXPECT_EQ(run({"generate", "--city", "boston"}), 1);
  EXPECT_NE(err_.str().find("--out"), std::string::npos);
}

TEST_F(CliTest, InfoReportsMetricsAndPois) {
  generate();
  EXPECT_EQ(run({"info", "--osm", osm_path_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("Average node degree"), std::string::npos);
  EXPECT_NE(out_.str().find("Northwestern Memorial Hospital"), std::string::npos);
}

TEST_F(CliTest, InfoFailsOnMissingFile) {
  EXPECT_EQ(run({"info", "--osm", (dir_ / "nope.osm").string()}), 1);
}

TEST_F(CliTest, AttackEndToEndWithArtifacts) {
  generate();
  const std::string svg = (dir_ / "plan.svg").string();
  const std::string geojson = (dir_ / "plan.geojson").string();
  EXPECT_EQ(run({"attack", "--osm", osm_path_, "--rank", "12", "--seed", "3", "--algorithm",
                 "greedy-pathcover", "--weight", "time", "--cost", "width", "--svg", svg,
                 "--geojson", geojson}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("status: success"), std::string::npos);
  EXPECT_NE(out_.str().find("verified exclusive shortest: yes"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(svg));
  EXPECT_TRUE(std::filesystem::exists(geojson));
}

TEST_F(CliTest, AttackByHospitalName) {
  generate();
  EXPECT_EQ(run({"attack", "--osm", osm_path_, "--rank", "10", "--hospital",
                 "Rush University Medical Center"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("Rush University Medical Center"), std::string::npos);
}

TEST_F(CliTest, AttackUnknownHospitalFails) {
  generate();
  EXPECT_EQ(run({"attack", "--osm", osm_path_, "--hospital", "St. Nowhere"}), 1);
  EXPECT_NE(err_.str().find("not found"), std::string::npos);
}

TEST_F(CliTest, AttackRejectsBadAlgorithm) {
  generate();
  EXPECT_EQ(run({"attack", "--osm", osm_path_, "--algorithm", "magic"}), 1);
  EXPECT_NE(err_.str().find("unknown algorithm"), std::string::npos);
}

TEST_F(CliTest, IsolateReportsCut) {
  generate();
  EXPECT_EQ(run({"isolate", "--osm", osm_path_, "--radius", "250"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("block"), std::string::npos);
  EXPECT_NE(out_.str().find("cost"), std::string::npos);
}

TEST_F(CliTest, InterdictReportsDelayFactor) {
  generate();
  EXPECT_EQ(run({"interdict", "--osm", osm_path_, "--budget", "6"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("delay factor"), std::string::npos);
}

TEST_F(CliTest, DanglingFlagRejected) {
  EXPECT_EQ(run({"generate", "--city"}), 1);
  EXPECT_NE(err_.str().find("--flag value"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsNegativeSeed) {
  EXPECT_EQ(run({"generate", "--city", "chicago", "--seed", "-1", "--out", osm_path_}), 1);
  EXPECT_NE(err_.str().find("--seed"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsNonNumericSeed) {
  EXPECT_EQ(run({"generate", "--city", "chicago", "--seed", "7x", "--out", osm_path_}), 1);
  EXPECT_NE(err_.str().find("--seed expects an integer"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsNonNumericScale) {
  EXPECT_EQ(run({"generate", "--city", "chicago", "--scale", "big", "--out", osm_path_}), 1);
  EXPECT_NE(err_.str().find("--scale expects a number"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsNonPositiveScale) {
  EXPECT_EQ(run({"generate", "--city", "chicago", "--scale", "0", "--out", osm_path_}), 1);
  EXPECT_NE(err_.str().find("--scale"), std::string::npos);
}

TEST_F(CliTest, AttackRejectsZeroRank) {
  generate();
  EXPECT_EQ(run({"attack", "--osm", osm_path_, "--rank", "0"}), 1);
  EXPECT_NE(err_.str().find("--rank"), std::string::npos);
}

TEST_F(CliTest, AttackRejectsNonPositiveBudget) {
  generate();
  EXPECT_EQ(run({"attack", "--osm", osm_path_, "--budget", "0"}), 1);
  EXPECT_NE(err_.str().find("--budget"), std::string::npos);
}

TEST_F(CliTest, InterdictRejectsNonNumericBudget) {
  generate();
  EXPECT_EQ(run({"interdict", "--osm", osm_path_, "--budget", "ten"}), 1);
  EXPECT_NE(err_.str().find("--budget expects a number"), std::string::npos);
}

TEST_F(CliTest, IsolateRejectsNegativeRadius) {
  generate();
  EXPECT_EQ(run({"isolate", "--osm", osm_path_, "--radius", "-5"}), 1);
  EXPECT_NE(err_.str().find("--radius"), std::string::npos);
}

// Regression tests for the silent-default flag bug: a typo'd flag used to
// fall through to every get()'s default.  Now Flags rejects it up front
// with the exact offending token, for every subcommand.

TEST_F(CliTest, TypoedFlagRejectedWithExactToken) {
  EXPECT_EQ(run({"attack", "--osm", osm_path_, "--algoritm", "greedy-pathcover"}), 1);
  EXPECT_NE(err_.str().find("unknown flag '--algoritm' for 'attack'"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, UnknownFlagRejectedForEverySubcommand) {
  for (const char* command :
       {"generate", "info", "attack", "isolate", "interdict", "routed", "stats", "loadgen"}) {
    EXPECT_EQ(run({command, "--bogus", "1"}), 1) << command;
    EXPECT_NE(err_.str().find(std::string("unknown flag '--bogus' for '") + command + "'"),
              std::string::npos)
        << command << ": " << err_.str();
  }
}

TEST_F(CliTest, UnknownFlagErrorListsAllowedFlags) {
  EXPECT_EQ(run({"generate", "--bogus", "1"}), 1);
  EXPECT_NE(err_.str().find("allowed:"), std::string::npos) << err_.str();
  EXPECT_NE(err_.str().find("--seed"), std::string::npos) << err_.str();
  EXPECT_NE(err_.str().find("--out"), std::string::npos) << err_.str();
}

TEST_F(CliTest, DuplicateFlagRejected) {
  EXPECT_EQ(run({"generate", "--city", "chicago", "--city", "boston", "--out", osm_path_}), 1);
  EXPECT_NE(err_.str().find("duplicate flag '--city'"), std::string::npos) << err_.str();
}

TEST_F(CliTest, RoutedRejectsNegativeThreads) {
  EXPECT_EQ(run({"routed", "--osm", osm_path_, "--threads", "-4"}), 1);
  EXPECT_NE(err_.str().find("--threads"), std::string::npos) << err_.str();
}

TEST_F(CliTest, RoutedRejectsOutOfRangePort) {
  EXPECT_EQ(run({"routed", "--osm", osm_path_, "--port", "70000"}), 1);
  EXPECT_NE(err_.str().find("--port"), std::string::npos) << err_.str();
}

TEST_F(CliTest, StatsRequiresConcretePort) {
  // Same client-side rule as loadgen: never guess which daemon to poll.
  EXPECT_EQ(run({"stats"}), 1);
  EXPECT_NE(err_.str().find("--port"), std::string::npos) << err_.str();
}

TEST_F(CliTest, StatsRejectsUnreadablePortFile) {
  EXPECT_EQ(run({"stats", "--port-file", (dir_ / "nope.port").string()}), 1);
  EXPECT_NE(err_.str().find("--port-file"), std::string::npos) << err_.str();
}

TEST_F(CliTest, LoadgenRequiresConcretePort) {
  // No --port, no --port-file, MTS_PORT unset: the client must not guess.
  EXPECT_EQ(run({"loadgen", "--requests", "1"}), 1);
  EXPECT_NE(err_.str().find("--port"), std::string::npos) << err_.str();
}

TEST_F(CliTest, LoadgenRejectsUnreadablePortFile) {
  EXPECT_EQ(run({"loadgen", "--port-file", (dir_ / "nope.port").string()}), 1);
  EXPECT_NE(err_.str().find("--port-file"), std::string::npos) << err_.str();
}

TEST_F(CliTest, LoadgenRejectsBadMix) {
  EXPECT_EQ(run({"loadgen", "--port", "1", "--mix", "chaos"}), 1);
  EXPECT_NE(err_.str().find("unknown mix 'chaos'"), std::string::npos) << err_.str();
}

TEST_F(CliTest, LoadgenRejectsKBeyondProtocolCap) {
  EXPECT_EQ(run({"loadgen", "--port", "1", "--k", "65"}), 1);
  EXPECT_NE(err_.str().find("--k must be in [1, 64]"), std::string::npos) << err_.str();
}

TEST_F(CliTest, LoadgenRejectsRankBeyondProtocolCap) {
  EXPECT_EQ(run({"loadgen", "--port", "1", "--rank", "513"}), 1);
  EXPECT_NE(err_.str().find("--rank must be in [1, 512]"), std::string::npos) << err_.str();
}

TEST_F(CliTest, LoadgenRejectsNegativeRetriesAndReconnects) {
  EXPECT_EQ(run({"loadgen", "--port", "1", "--retries", "-1"}), 1);
  EXPECT_NE(err_.str().find("--retries must be >= 0"), std::string::npos) << err_.str();
  err_.str("");
  EXPECT_EQ(run({"loadgen", "--port", "1", "--reconnects", "-2"}), 1);
  EXPECT_NE(err_.str().find("--reconnects must be >= 0"), std::string::npos) << err_.str();
}

TEST_F(CliTest, LoadgenRequireZeroDropsIsBoolean) {
  EXPECT_EQ(run({"loadgen", "--port", "1", "--require-zero-drops", "2"}), 1);
  EXPECT_NE(err_.str().find("--require-zero-drops must be 0 or 1"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, RoutedRejectsMalformedOverloadKnobs) {
  // Each knob validates before the daemon binds a port, so a typo fails
  // fast instead of silently serving unprotected.
  const std::pair<const char*, const char*> knobs[] = {
      {"MTS_MAX_INFLIGHT", "MTS_MAX_INFLIGHT must be >= 0"},
      {"MTS_MAX_QUEUE", "MTS_MAX_QUEUE must be >= 0"},
      {"MTS_DEADLINE_MS", "MTS_DEADLINE_MS must be >= 0"},
      {"MTS_WRITE_TIMEOUT_MS", "MTS_WRITE_TIMEOUT_MS must be >= 0"},
  };
  // "-3" probes the sign check; "nope" and "250x" probe strict parsing —
  // a garbage value must not fall back to 0 and serve unprotected.
  for (const char* value : {"-3", "nope", "250x"}) {
    for (const auto& [name, message] : knobs) {
      ASSERT_EQ(setenv(name, value, 1), 0);
      err_.str("");
      EXPECT_EQ(run({"routed", "--osm", osm_path_}), 1) << name << "=" << value;
      EXPECT_NE(err_.str().find(message), std::string::npos)
          << name << "=" << value << ": " << err_.str();
      ASSERT_EQ(unsetenv(name), 0);
    }
  }
}

}  // namespace
}  // namespace mts::cli
