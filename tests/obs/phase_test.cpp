#include "obs/phase.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/timer.hpp"

namespace mts::obs {
namespace {

class PhaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    set_metrics_enabled(false);
    set_trace_enabled(false);
    set_timing_enabled(true);
  }
};

const PhaseSnapshot* find_phase(const MetricsSnapshot& snap, const std::string& path) {
  for (const auto& phase : snap.phases) {
    if (phase.path == path) return &phase;
  }
  return nullptr;
}

TEST_F(PhaseTest, NestingBuildsSlashJoinedPaths) {
  {
    ScopedPhase outer("outer");
    ScopedPhase inner("inner");
    { ScopedPhase leaf("leaf"); }
  }
  const auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_NE(find_phase(snap, "outer"), nullptr);
  EXPECT_NE(find_phase(snap, "outer/inner"), nullptr);
  const auto* leaf = find_phase(snap, "outer/inner/leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 1u);
}

TEST_F(PhaseTest, RepeatedScopesAccumulateCounts) {
  for (int i = 0; i < 5; ++i) {
    ScopedPhase phase("repeat");
  }
  const auto snap = MetricsRegistry::instance().snapshot();
  const auto* phase = find_phase(snap, "repeat");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->count, 5u);
  EXPECT_GE(phase->seconds, 0.0);
}

TEST_F(PhaseTest, RootScopeIgnoresAndRestoresTheCurrentStack) {
  {
    ScopedPhase outer("outer");
    {
      ScopedPhase task("task", PhaseKind::Root);
      ScopedPhase child("child");
    }
    // The previous path must be restored for later siblings.
    { ScopedPhase sibling("sibling"); }
  }
  const auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_NE(find_phase(snap, "task"), nullptr);
  EXPECT_NE(find_phase(snap, "task/child"), nullptr);
  EXPECT_EQ(find_phase(snap, "outer/task"), nullptr);
  EXPECT_NE(find_phase(snap, "outer/sibling"), nullptr);
}

TEST_F(PhaseTest, ExceptionUnwindStillRecordsAndRestores) {
  try {
    ScopedPhase outer("unwind_outer");
    ScopedPhase inner("unwind_inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  { ScopedPhase after("after"); }
  const auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_NE(find_phase(snap, "unwind_outer"), nullptr);
  EXPECT_NE(find_phase(snap, "unwind_outer/unwind_inner"), nullptr);
  // The phase stack unwound cleanly: "after" is a root-level path.
  EXPECT_NE(find_phase(snap, "after"), nullptr);
}

TEST_F(PhaseTest, DisabledScopesRecordNothing) {
  set_metrics_enabled(false);
  { ScopedPhase phase("invisible"); }
  set_metrics_enabled(true);
  const auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(find_phase(snap, "invisible"), nullptr);
}

TEST_F(PhaseTest, TimingOffZeroesDurationsButKeepsCounts) {
  set_timing_enabled(false);
  for (int i = 0; i < 3; ++i) {
    ScopedPhase phase("timed");
  }
  const auto snap = MetricsRegistry::instance().snapshot();
  const auto* phase = find_phase(snap, "timed");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->count, 3u);
  EXPECT_EQ(phase->seconds, 0.0);
}

TEST_F(PhaseTest, TraceEventsCarryZeroedTimestampsWhenTimingOff) {
  set_trace_enabled(true);
  set_timing_enabled(false);
  { ScopedPhase phase("traced"); }
  const auto events = MetricsRegistry::instance().trace_events();
  ASSERT_FALSE(events.empty());
  for (const auto& event : events) {
    EXPECT_EQ(event.ts_s, 0.0);
    EXPECT_EQ(event.dur_s, 0.0);
  }
}

TEST_F(PhaseTest, TraceDisabledBuffersNoEvents) {
  { ScopedPhase phase("metrics_only"); }
  EXPECT_TRUE(MetricsRegistry::instance().trace_events().empty());
}

}  // namespace
}  // namespace mts::obs
