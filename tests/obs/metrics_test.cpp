#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/stats.hpp"

namespace mts::obs {
namespace {

/// The registry is a process-wide singleton shared by every test in this
/// binary; each test turns recording on and resets to a clean slate.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    set_metrics_enabled(false);
    set_trace_enabled(false);
  }
};

const CounterSnapshot* find_counter(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& counter : snap.counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

const HistogramSnapshot* find_histogram(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& hist : snap.histograms) {
    if (hist.name == name) return &hist;
  }
  return nullptr;
}

TEST_F(MetricsTest, RegistrationIsIdempotent) {
  auto& registry = MetricsRegistry::instance();
  const CounterId a = registry.counter("test.idempotent");
  const CounterId b = registry.counter("test.idempotent");
  EXPECT_EQ(a.index, b.index);
  const HistogramId ha = registry.histogram("test.idempotent_hist");
  const HistogramId hb = registry.histogram("test.idempotent_hist");
  EXPECT_EQ(ha.index, hb.index);
}

TEST_F(MetricsTest, CounterAddShowsUpInSnapshot) {
  auto& registry = MetricsRegistry::instance();
  const CounterId id = registry.counter("test.basic_counter");
  add(id);
  add(id, 41);
  const auto snap = registry.snapshot();
  const auto* counter = find_counter(snap, "test.basic_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 42u);
}

TEST_F(MetricsTest, HistogramTracksCountSumMinMaxBuckets) {
  auto& registry = MetricsRegistry::instance();
  const HistogramId id = registry.histogram("test.basic_hist");
  observe(id, 0.5);
  observe(id, 2.0);
  observe(id, 8.0);
  const auto snap = registry.snapshot();
  const auto* hist = find_histogram(snap, "test.basic_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_DOUBLE_EQ(hist->sum, 10.5);
  EXPECT_DOUBLE_EQ(hist->min, 0.5);
  EXPECT_DOUBLE_EQ(hist->max, 8.0);
  ASSERT_EQ(hist->buckets.size(), kHistogramBuckets);
  std::uint64_t bucket_total = 0;
  for (const auto b : hist->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 3u);
}

TEST_F(MetricsTest, EmptyHistogramReportsZeroMinMax) {
  auto& registry = MetricsRegistry::instance();
  registry.histogram("test.empty_hist");
  const auto snap = registry.snapshot();
  const auto* hist = find_histogram(snap, "test.empty_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 0u);
  EXPECT_DOUBLE_EQ(hist->min, 0.0);
  EXPECT_DOUBLE_EQ(hist->max, 0.0);
}

TEST_F(MetricsTest, DisabledRecordingIsANoOp) {
  auto& registry = MetricsRegistry::instance();
  const CounterId id = registry.counter("test.gated_counter");
  set_metrics_enabled(false);
  add(id, 100);
  set_metrics_enabled(true);
  add(id, 1);
  const auto snap = registry.snapshot();
  const auto* counter = find_counter(snap, "test.gated_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 1u);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  auto& registry = MetricsRegistry::instance();
  const CounterId id = registry.counter("test.reset_counter");
  const HistogramId hid = registry.histogram("test.reset_hist");
  add(id, 7);
  observe(hid, 3.0);
  registry.reset();
  const auto snap = registry.snapshot();
  const auto* counter = find_counter(snap, "test.reset_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 0u);
  const auto* hist = find_histogram(snap, "test.reset_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 0u);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.zz");
  registry.counter("test.aa");
  const auto snap = registry.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

// The TSan target: N threads hammer one counter and one histogram through
// their per-thread shards while the main thread snapshots concurrently;
// the final snapshot must equal the exact sum of all recorded work.
TEST_F(MetricsTest, ConcurrentRecordingSumsExactly) {
  auto& registry = MetricsRegistry::instance();
  const CounterId id = registry.counter("test.concurrent_counter");
  const HistogramId hid = registry.histogram("test.concurrent_hist");

  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        add(id);
        observe(hid, 1.0);
      }
    });
  }
  // Concurrent snapshots must be safe (values may be mid-flight but the
  // call itself races with nothing it shouldn't).
  for (int i = 0; i < 10; ++i) (void)registry.snapshot();
  for (auto& thread : threads) thread.join();

  const auto snap = registry.snapshot();
  const auto* counter = find_counter(snap, "test.concurrent_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, kThreads * kIterations);
  const auto* hist = find_histogram(snap, "test.concurrent_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kIterations);
  EXPECT_DOUBLE_EQ(hist->sum, static_cast<double>(kThreads * kIterations));
}

// Regression for a race surfaced by the thread-safety annotations:
// seconds_since_epoch() used to read the registry epoch without the lock
// while reset() rewrote it, so a concurrent reset could hand out a torn
// time_point.  Under TSan this loop is the proof the fix holds; the name
// keeps it inside the ci.sh tsan sweep (ConcurrentRecording filter).
TEST_F(MetricsTest, ConcurrentRecordingEpochResetRace) {
  auto& registry = MetricsRegistry::instance();
  constexpr int kIterations = 2000;
  std::thread resetter([&] {
    for (int i = 0; i < kIterations; ++i) registry.reset();
  });
  for (int i = 0; i < kIterations; ++i) {
    // Never negative: both epoch writes and reads are now serialized on
    // the registry mutex, and the epoch only moves forward.
    EXPECT_GE(registry.seconds_since_epoch(), 0.0);
  }
  resetter.join();
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  auto& registry = MetricsRegistry::instance();
  registry.histogram("test.quantile_empty");
  const auto snap = registry.snapshot();
  const auto* hist = find_histogram(snap, "test.quantile_empty");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 0.0);
}

TEST_F(MetricsTest, QuantileIsExactForSingleValuedHistogram) {
  // Every sample identical: min == max clamps every quantile to the exact
  // value regardless of where the bucket interpolation lands.
  auto& registry = MetricsRegistry::instance();
  const HistogramId id = registry.histogram("test.quantile_single");
  for (int i = 0; i < 100; ++i) observe(id, 0.003);
  const auto snap = registry.snapshot();
  const auto* hist = find_histogram(snap, "test.quantile_single");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), 0.003);
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 0.003);
  EXPECT_DOUBLE_EQ(hist->quantile(0.99), 0.003);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 0.003);
}

TEST_F(MetricsTest, QuantileMergesAcrossThreadShards) {
  // Half the samples land in another thread's shard; the snapshot merge
  // must see one histogram, so the median sits between the two clusters.
  auto& registry = MetricsRegistry::instance();
  const HistogramId id = registry.histogram("test.quantile_shards");
  for (int i = 0; i < 50; ++i) observe(id, 0.001);
  std::thread other([&] {
    for (int i = 0; i < 50; ++i) observe(id, 0.512);
  });
  other.join();
  const auto snap = registry.snapshot();
  const auto* hist = find_histogram(snap, "test.quantile_shards");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100u);
  EXPECT_LE(hist->quantile(0.25), 0.01);   // inside the low cluster's bucket
  EXPECT_GE(hist->quantile(0.75), 0.256);  // inside the high cluster's bucket
}

TEST_F(MetricsTest, QuantileIsNondecreasingInQ) {
  auto& registry = MetricsRegistry::instance();
  const HistogramId id = registry.histogram("test.quantile_monotone");
  for (int i = 1; i <= 200; ++i) observe(id, 1e-5 * i);
  const auto snap = registry.snapshot();
  const auto* hist = find_histogram(snap, "test.quantile_monotone");
  ASSERT_NE(hist, nullptr);
  double previous = hist->quantile(0.0);
  EXPECT_DOUBLE_EQ(previous, hist->min);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = hist->quantile(q);
    EXPECT_GE(current, previous) << "q=" << q;
    previous = current;
  }
  EXPECT_LE(hist->quantile(1.0), hist->max);
}

TEST_F(MetricsTest, QuantileMatchesExactPercentileWithinOneBucket) {
  // The log2 buckets bound the error by a factor of 2 of the true sample
  // quantile (one bucket width); verify against the shared exact
  // estimator on a spread of values.
  auto& registry = MetricsRegistry::instance();
  const HistogramId id = registry.histogram("test.quantile_vs_exact");
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double value = 1e-4 * (1.0 + (i % 97));  // 0.1 ms .. ~9.8 ms
    samples.push_back(value);
    observe(id, value);
  }
  const auto snap = registry.snapshot();
  const auto* hist = find_histogram(snap, "test.quantile_vs_exact");
  ASSERT_NE(hist, nullptr);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = mts::percentile(samples, q);
    const double estimate = hist->quantile(q);
    EXPECT_GE(estimate, exact / 2.0) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
  }
}

TEST_F(MetricsTest, TraceImpliesMetrics) {
  set_metrics_enabled(false);
  set_trace_enabled(true);
  EXPECT_TRUE(trace_enabled());
  EXPECT_TRUE(metrics_enabled());
}

}  // namespace
}  // namespace mts::obs
