#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/phase.hpp"

namespace mts::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    set_metrics_enabled(false);
    set_trace_enabled(false);
  }
};

TraceEvent make_event(const char* name, double ts_s, double dur_s, std::uint32_t tid) {
  TraceEvent event;
  event.name = name;
  event.ts_s = ts_s;
  event.dur_s = dur_s;
  event.tid = tid;
  return event;
}

/// Brace/bracket/quote balance — the same structural check the repo's
/// json_report tests use.
void expect_balanced_json(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, MetricsJsonHasRunBlockAndCatalog) {
  auto& registry = MetricsRegistry::instance();
  add(registry.counter("trace_test.counter"), 3);
  observe(registry.histogram("trace_test.hist"), 2.5);
  { ScopedPhase phase("trace_test_phase"); }

  RunInfo run;
  run.threads_requested = 2;
  run.threads_effective = 4;
  run.timing = false;
  std::ostringstream out;
  write_metrics_json(registry.snapshot(), run, out);
  const std::string json = out.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"threads_requested\":2"), std::string::npos);
  EXPECT_NE(json.find("\"threads_effective\":4"), std::string::npos);
  EXPECT_NE(json.find("\"timing\":false"), std::string::npos);
  EXPECT_NE(json.find("\"trace_test.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"trace_test.hist\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"trace_test_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_dropped\":0"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceEmitsCompleteEventsInMicroseconds) {
  std::vector<TraceEvent> events;
  events.push_back(make_event("phase_a", 0.001, 0.002, 0));
  events.push_back(make_event("phase_b", 0.5, 0.25, 3));
  std::ostringstream out;
  write_chrome_trace(events, out);
  const std::string json = out.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase_a\""), std::string::npos);
  // 0.001 s -> 1000 us, 0.002 s -> 2000 us.
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceEmitsCategoryAndArgsForRequestSpans) {
  TraceEvent span = make_event("route", 0.001, 0.002, 1);
  span.cat = "mts.request";
  span.args.emplace_back("id", "7");
  span.args.emplace_back("edges_scanned", "123");
  std::vector<TraceEvent> events;
  events.push_back(span);
  std::ostringstream out;
  write_chrome_trace(events, out);
  const std::string json = out.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"cat\":\"mts.request\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"id\":\"7\",\"edges_scanned\":\"123\"}"), std::string::npos);
}

TEST_F(TraceTest, ArgFreeEventsCarryNoArgsObject) {
  // The byte-identity contract for pre-span traces: no args key at all.
  std::vector<TraceEvent> events;
  events.push_back(make_event("phase_a", 0.0, 0.0, 0));
  std::ostringstream out;
  write_chrome_trace(events, out);
  EXPECT_EQ(out.str().find("\"args\""), std::string::npos);
  EXPECT_NE(out.str().find("\"cat\":\"mts\""), std::string::npos);
}

TEST_F(TraceTest, RecordFullTraceEventOverwritesTid) {
  TraceEvent span = make_event("kalt", 0.0, 0.001, 99);
  span.cat = "mts.request";
  span.args.emplace_back("id", "4");
  MetricsRegistry::instance().record_trace_event(std::move(span));
  const auto events = MetricsRegistry::instance().trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kalt");
  EXPECT_EQ(events[0].cat, "mts.request");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_NE(events[0].tid, 99u);  // stamped with the recording shard's tid
}

TEST_F(TraceTest, ChromeTraceEscapesNames) {
  std::vector<TraceEvent> events;
  events.push_back(make_event("weird\"name\\with\nstuff", 0.0, 0.0, 0));
  std::ostringstream out;
  write_chrome_trace(events, out);
  const std::string json = out.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
}

TEST_F(TraceTest, ScopedPhasesProduceTraceEvents) {
  {
    ScopedPhase outer("outer");
    ScopedPhase inner("inner");
  }
  const auto events = MetricsRegistry::instance().trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Scopes close inner-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_LE(events[0].dur_s, events[1].dur_s);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  std::ostringstream out;
  write_chrome_trace({}, out);
  expect_balanced_json(out.str());
  EXPECT_EQ(out.str(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

}  // namespace
}  // namespace mts::obs
