#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mts::obs {
namespace {

// The caller-supplied clock makes every test deterministic: timestamps are
// plain doubles, no sleeping, no real clock.

TEST(WindowedHistogram, EmptyWindowReportsZeroes) {
  const WindowedHistogram window(1.0, 60);
  const WindowSnapshot snap = window.snapshot(123.0);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.qps, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50_s, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_s, 0.0);
  EXPECT_DOUBLE_EQ(snap.seconds, 60.0);
}

TEST(WindowedHistogram, CountsAndQpsOverTheWindow) {
  WindowedHistogram window(1.0, 10);
  for (int i = 0; i < 30; ++i) window.record(5.0 + 0.01 * i, 0.002);
  const WindowSnapshot snap = window.snapshot(5.5);
  EXPECT_EQ(snap.count, 30u);
  EXPECT_DOUBLE_EQ(snap.seconds, 10.0);
  EXPECT_DOUBLE_EQ(snap.qps, 3.0);
  EXPECT_DOUBLE_EQ(snap.min_s, 0.002);
  EXPECT_DOUBLE_EQ(snap.max_s, 0.002);
  // Single-valued window: the quantile clamp makes the estimate exact.
  EXPECT_DOUBLE_EQ(snap.p50_s, 0.002);
  EXPECT_DOUBLE_EQ(snap.p99_s, 0.002);
}

TEST(WindowedHistogram, OldSlotsScrollOutOfTheWindow) {
  WindowedHistogram window(1.0, 5);
  window.record(0.5, 0.001);  // slot 0
  window.record(3.5, 0.004);  // slot 3
  // At t=4.9 both slots are inside the 5 s window.
  EXPECT_EQ(window.snapshot(4.9).count, 2u);
  // At t=5.5 the window covers slots 1..5, so slot 0 is out.
  const WindowSnapshot later = window.snapshot(5.5);
  EXPECT_EQ(later.count, 1u);
  EXPECT_DOUBLE_EQ(later.min_s, 0.004);
  // Far in the future everything has scrolled out.
  EXPECT_EQ(window.snapshot(100.0).count, 0u);
}

TEST(WindowedHistogram, StaleSlotIsReclaimedOnWraparound) {
  WindowedHistogram window(1.0, 4);
  window.record(0.5, 0.001);  // slot 0
  // Slot 4 maps onto the same ring position as slot 0 (4 % 4 == 0) and
  // must evict the old samples rather than merge into them.
  window.record(4.5, 0.016);
  const WindowSnapshot snap = window.snapshot(4.9);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min_s, 0.016);
  EXPECT_DOUBLE_EQ(snap.max_s, 0.016);
}

TEST(WindowedHistogram, PercentilesSeparateFastAndSlowSamples) {
  WindowedHistogram window(1.0, 60);
  // 90 fast samples and 10 slow outliers, all inside the window: p50 must
  // stay near the fast cluster while p99 reaches the outliers' bucket.
  for (int i = 0; i < 90; ++i) window.record(10.0, 0.001);
  for (int i = 0; i < 10; ++i) window.record(10.0, 1.024);
  const WindowSnapshot snap = window.snapshot(10.5);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_LT(snap.p50_s, 0.01);
  EXPECT_GT(snap.p99_s, 0.5);
  EXPECT_DOUBLE_EQ(snap.max_s, 1.024);
}

TEST(WindowedHistogram, SnapshotMergesSamplesAcrossSlots) {
  WindowedHistogram window(1.0, 10);
  for (int slot = 0; slot < 8; ++slot) {
    window.record(static_cast<double>(slot) + 0.5, 0.001 * (1 << slot));
  }
  const WindowSnapshot snap = window.snapshot(8.0);
  EXPECT_EQ(snap.count, 8u);
  EXPECT_DOUBLE_EQ(snap.min_s, 0.001);
  EXPECT_DOUBLE_EQ(snap.max_s, 0.128);
  EXPECT_GE(snap.p99_s, snap.p50_s);
  EXPECT_DOUBLE_EQ(snap.sum_s, 0.001 * 255);
}

// The TSan target (ci.sh runs every WindowedHistogram* test under tsan):
// every ring position holds a stale interval that the writers must reclaim
// concurrently (first touch wins the rotation race) while a reader
// snapshots mid-flight; the final count must still be exact because all
// concurrent samples land inside the final window.
TEST(WindowedHistogram, ConcurrentRotationKeepsExactCounts) {
  WindowedHistogram window(1.0, 16);
  for (int k = 0; k < 16; ++k) window.record(k + 0.5, 0.001);  // stale prefill
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&window, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Keys 1000..1015: each ring position is hit by every thread, and
        // whoever gets there first evicts the prefilled slot.
        const double now_s = 1000.5 + static_cast<double>((i + t) % 16);
        window.record(now_s, 0.002);
      }
    });
  }
  for (int i = 0; i < 50; ++i) (void)window.snapshot(1015.5);
  for (auto& thread : threads) thread.join();
  const WindowSnapshot snap = window.snapshot(1015.5);
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min_s, 0.002);  // no prefill sample survived
}

}  // namespace
}  // namespace mts::obs
