#include "obs/slowlog.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mts::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(SlowQueryLog, AppendsOneJsonLinePerEntry) {
  const std::string path = temp_path("slowlog_basic.jsonl");
  std::remove(path.c_str());
  SlowQueryLog log(path);
  SlowLogEntry entry;
  entry.verb = "route";
  entry.id = 42;
  entry.latency_s = 0.125;
  entry.fields.emplace_back("edges_scanned", 17);
  log.append(entry);
  entry.verb = "attack";
  entry.id = 43;
  entry.error = "budget-exhausted: edge scan cap";
  log.append(entry);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"verb\":\"route\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"latency_ms\":125"), std::string::npos);
  EXPECT_NE(lines[0].find("\"edges_scanned\":17"), std::string::npos);
  EXPECT_EQ(lines[0].find("\"error\""), std::string::npos);  // only on failure
  EXPECT_NE(lines[1].find("\"error\":\"budget-exhausted: edge scan cap\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SlowQueryLog, AppendsAcrossReopens) {
  // The daemon may restart against the same log file; append mode must
  // preserve earlier records.
  const std::string path = temp_path("slowlog_reopen.jsonl");
  std::remove(path.c_str());
  {
    SlowQueryLog log(path);
    SlowLogEntry entry;
    entry.verb = "route";
    log.append(entry);
  }
  {
    SlowQueryLog log(path);
    SlowLogEntry entry;
    entry.verb = "kalt";
    log.append(entry);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("route"), std::string::npos);
  EXPECT_NE(lines[1].find("kalt"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SlowQueryLog, EscapesErrorStrings) {
  const std::string path = temp_path("slowlog_escape.jsonl");
  std::remove(path.c_str());
  SlowQueryLog log(path);
  SlowLogEntry entry;
  entry.verb = "route";
  entry.error = "invalid-input: \"quoted\"\nnewline";
  log.append(entry);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);  // the newline must not split the record
  EXPECT_NE(lines[0].find("\\\"quoted\\\"\\nnewline"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SlowQueryLog, UnwritablePathThrows) {
  // A regular file where a parent directory should be: opening (or the
  // directory creation before it) must throw rather than silently drop
  // every future record.
  const std::string blocker = temp_path("slowlog_blocker");
  std::ofstream(blocker) << "x";
  EXPECT_ANY_THROW(SlowQueryLog(blocker + "/slow.jsonl"));
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace mts::obs
