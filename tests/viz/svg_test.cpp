#include "viz/svg.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "citygen/generate.hpp"

namespace mts::viz {
namespace {

const osm::RoadNetwork& network() {
  static const osm::RoadNetwork net = citygen::generate_city(citygen::City::Boston, 0.15, 4);
  return net;
}

TEST(Svg, ContainsAllLayersAndEndpoints) {
  const auto& net = network();
  const auto weights = attack::make_weights(net, attack::WeightType::Time);
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;

  Path p_star;
  p_star.edges = {EdgeId(0), EdgeId(1)};
  const std::vector<EdgeId> removed = {EdgeId(2), EdgeId(3)};

  RenderOptions options;
  options.title = "Unit Test Figure";
  const std::string svg = render_attack_svg(net, p_star, removed, s, t, options);

  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find(options.p_star_color), std::string::npos);
  EXPECT_NE(svg.find(options.removed_color), std::string::npos);
  EXPECT_NE(svg.find(options.road_color), std::string::npos);
  EXPECT_NE(svg.find(options.target_color), std::string::npos);
  EXPECT_NE(svg.find("Unit Test Figure"), std::string::npos);
  // Two endpoint circles.
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 2u);
  (void)weights;
}

TEST(Svg, LineCountMatchesEdges) {
  const auto& net = network();
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;
  const std::string svg = render_attack_svg(net, Path{}, {}, s, t);
  std::size_t lines = 0;
  for (std::size_t pos = svg.find("<line"); pos != std::string::npos;
       pos = svg.find("<line", pos + 1)) {
    ++lines;
  }
  EXPECT_EQ(lines, net.graph().num_edges());
}

TEST(Svg, RemovedLayerWinsOverPStar) {
  // An edge both on p* and removed renders as removed (drawn last).
  const auto& net = network();
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;
  Path p_star;
  p_star.edges = {EdgeId(5)};
  const std::string svg = render_attack_svg(net, p_star, {EdgeId(5)}, s, t);
  // The p* stroke color must not appear (its only edge was overridden).
  EXPECT_EQ(svg.find(RenderOptions{}.p_star_color + "\" stroke-width=\"3.5"),
            std::string::npos);
}

TEST(Svg, CoordinatesStayInViewBox) {
  const auto& net = network();
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;
  RenderOptions options;
  options.width_px = 500.0;
  const std::string svg = render_attack_svg(net, Path{}, {}, s, t, options);
  // Parse every x1=" value and check bounds loosely.
  for (std::size_t pos = svg.find("x1=\""); pos != std::string::npos;
       pos = svg.find("x1=\"", pos + 1)) {
    const double x = std::stod(svg.substr(pos + 4));
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 500.0);
  }
}

}  // namespace
}  // namespace mts::viz
