#include "viz/geojson.hpp"

#include <gtest/gtest.h>

#include "citygen/generate.hpp"

namespace mts::viz {
namespace {

const osm::RoadNetwork& network() {
  static const osm::RoadNetwork net =
      citygen::generate_city(citygen::City::Chicago, 0.15, 6);
  return net;
}

/// Structural sanity: braces and brackets balance (not a full parser, but
/// catches every malformed-emission bug we have had).
void expect_balanced(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{') ++braces;
    else if (ch == '}') --braces;
    else if (ch == '[') ++brackets;
    else if (ch == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(GeoJson, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(GeoJson, ContainsRolesAndBalances) {
  const auto& net = network();
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;
  Path p_star;
  p_star.edges = {EdgeId(0)};
  const std::string json = render_attack_geojson(net, p_star, {EdgeId(1)}, s, t);
  expect_balanced(json);
  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"p_star\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"removed\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"source\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"target\""), std::string::npos);
  EXPECT_NE(json.find("\"highway\":"), std::string::npos);
}

TEST(GeoJson, CoordinatesAreNearTheCityAnchor) {
  const auto& net = network();
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;
  const std::string json = render_attack_geojson(net, Path{}, {}, s, t);
  // Chicago anchor ~(-87.63, 41.88); every coordinate should be close.
  const auto pos = json.find("[-87.");
  EXPECT_NE(pos, std::string::npos);
  EXPECT_NE(json.find(",41.8"), std::string::npos);
}

TEST(GeoJson, RoadsCanBeOmitted) {
  const auto& net = network();
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;
  GeoJsonOptions options;
  options.roads = false;
  Path p_star;
  p_star.edges = {EdgeId(0)};
  const std::string json = render_attack_geojson(net, p_star, {EdgeId(1)}, s, t, options);
  expect_balanced(json);
  EXPECT_EQ(json.find("\"role\":\"road\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"p_star\""), std::string::npos);
}

TEST(GeoJson, AttributesCanBeOmitted) {
  const auto& net = network();
  const NodeId s = net.intersection_nodes().front();
  const NodeId t = net.pois().front().node;
  GeoJsonOptions options;
  options.attributes = false;
  const std::string json = render_attack_geojson(net, Path{}, {}, s, t, options);
  expect_balanced(json);
  EXPECT_EQ(json.find("\"highway\":"), std::string::npos);
}

}  // namespace
}  // namespace mts::viz
