#include "lp/covering.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace mts {
namespace {

bool covers_everything(const CoveringProblem& problem, const std::vector<std::size_t>& chosen) {
  for (const auto& set : problem.sets) {
    bool covered = false;
    for (std::size_t j : set) {
      for (std::size_t c : chosen) {
        if (c == j) {
          covered = true;
          break;
        }
      }
      if (covered) break;
    }
    if (!covered) return false;
  }
  return true;
}

/// Exhaustive optimal cover for small instances.
double brute_force_optimum(const CoveringProblem& problem) {
  const std::size_t n = problem.costs.size();
  double best = 1e18;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::size_t> chosen;
    double cost = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) {
        chosen.push_back(j);
        cost += problem.costs[j];
      }
    }
    if (cost < best && covers_everything(problem, chosen)) best = cost;
  }
  return best;
}

CoveringProblem small_instance() {
  // Universe {0,1,2}; element 0 covers sets {0,1}, 1 covers {1,2},
  // 2 covers {0}, 3 covers {2}.
  CoveringProblem p;
  p.costs = {2.0, 2.0, 1.5, 1.5};
  p.sets = {{0, 2}, {0, 1}, {1, 3}};
  return p;
}

TEST(CoveringGreedy, FindsValidCover) {
  const auto problem = small_instance();
  const auto solution = solve_covering_greedy(problem);
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(covers_everything(problem, solution.chosen));
  EXPECT_GT(solution.cost, 0.0);
}

TEST(CoveringLp, FindsValidCoverWithLowerBound) {
  auto problem = small_instance();
  Rng rng(1);
  const auto solution = solve_covering_lp(problem, rng);
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(covers_everything(problem, solution.chosen));
  EXPECT_LE(solution.lp_lower_bound, solution.cost + 1e-9);
  EXPECT_GE(solution.lp_lower_bound, 0.0);
}

TEST(Covering, EmptySetIsInfeasible) {
  CoveringProblem problem;
  problem.costs = {1.0};
  problem.sets = {{}};
  Rng rng(1);
  EXPECT_FALSE(solve_covering_greedy(problem).feasible);
  EXPECT_FALSE(solve_covering_lp(problem, rng).feasible);
}

TEST(Covering, NoConstraintsIsFreeCover) {
  CoveringProblem problem;
  problem.costs = {1.0, 2.0};
  Rng rng(1);
  const auto lp = solve_covering_lp(problem, rng);
  ASSERT_TRUE(lp.feasible);
  EXPECT_TRUE(lp.chosen.empty());
  EXPECT_DOUBLE_EQ(lp.cost, 0.0);
  const auto greedy = solve_covering_greedy(problem);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_TRUE(greedy.chosen.empty());
}

TEST(Covering, SingleMandatoryElement) {
  CoveringProblem problem;
  problem.costs = {5.0, 1.0};
  problem.sets = {{0}};  // only element 0 covers the set
  Rng rng(1);
  const auto lp = solve_covering_lp(problem, rng);
  ASSERT_TRUE(lp.feasible);
  EXPECT_EQ(lp.chosen, (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(lp.cost, 5.0);
}

TEST(Covering, LpNearOptimalOnRandomInstances) {
  int lp_optimal = 0;
  int greedy_optimal = 0;
  constexpr int kInstances = 20;
  for (std::uint64_t seed = 1; seed <= kInstances; ++seed) {
    Rng rng(seed);
    CoveringProblem problem;
    const std::size_t n = 10;
    for (std::size_t j = 0; j < n; ++j) problem.costs.push_back(rng.uniform(0.5, 3.0));
    const std::size_t rows = 6;
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<std::size_t> set;
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.chance(0.35)) set.push_back(j);
      }
      if (set.empty()) set.push_back(rng.uniform_index(n));
      problem.sets.push_back(std::move(set));
    }
    const double optimum = brute_force_optimum(problem);

    Rng round_rng(seed * 31);
    const auto lp = solve_covering_lp(problem, round_rng, {});
    const auto greedy = solve_covering_greedy(problem);
    ASSERT_TRUE(lp.feasible);
    ASSERT_TRUE(greedy.feasible);
    EXPECT_TRUE(covers_everything(problem, lp.chosen)) << "seed " << seed;
    EXPECT_TRUE(covers_everything(problem, greedy.chosen)) << "seed " << seed;
    // LP lower bound brackets the true optimum.
    EXPECT_LE(lp.lp_lower_bound, optimum + 1e-7) << "seed " << seed;
    EXPECT_GE(lp.cost, optimum - 1e-9) << "seed " << seed;
    if (lp.cost <= optimum + 1e-9) ++lp_optimal;
    if (greedy.cost <= optimum + 1e-9) ++greedy_optimal;
  }
  // PATHATTACK reports the LP approach optimal in >98% of instances; on
  // these tiny instances it should be optimal in the large majority.
  EXPECT_GE(lp_optimal, kInstances * 3 / 4);
  EXPECT_GE(greedy_optimal, kInstances / 2);
}

TEST(Covering, LpIterationLimitFallsBackToGreedy) {
  // A one-iteration LP cap cannot finish phase 1, so the solver degrades to
  // the greedy cover and says so instead of failing the whole attack.
  const auto problem = small_instance();
  Rng rng(1);
  CoveringOptions options;
  options.lp.max_iterations = 1;
  const auto solution = solve_covering_lp(problem, rng, options);
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(covers_everything(problem, solution.chosen));
  EXPECT_TRUE(solution.fallback_used);
  EXPECT_NE(solution.fallback_reason.find("iteration-limit"), std::string::npos)
      << solution.fallback_reason;
  EXPECT_NE(solution.fallback_reason.find("phase"), std::string::npos) << solution.fallback_reason;
  // No certified bound without an LP optimum.
  EXPECT_DOUBLE_EQ(solution.lp_lower_bound, 0.0);
  // The substituted cover is exactly the greedy one.
  const auto greedy = solve_covering_greedy(problem);
  EXPECT_EQ(solution.chosen, greedy.chosen);
  EXPECT_DOUBLE_EQ(solution.cost, greedy.cost);
}

TEST(Covering, PruneDropsRedundantElements) {
  // Greedy on this instance could take both 0 and 1; pruning keeps one.
  CoveringProblem problem;
  problem.costs = {1.0, 1.0};
  problem.sets = {{0, 1}};
  const auto greedy = solve_covering_greedy(problem);
  EXPECT_EQ(greedy.chosen.size(), 1u);
}

}  // namespace
}  // namespace mts
