#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mts {
namespace {

TEST(Simplex, TrivialLowerBoundedMin) {
  // min x0 + x1 s.t. x0 + x1 >= 2, x >= 0  ->  objective 2.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.add_constraint({0, 1}, {1.0, 1.0}, Relation::GreaterEqual, 2.0);
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-9);
  EXPECT_NEAR(result.x[0] + result.x[1], 2.0, 1e-9);
}

TEST(Simplex, ClassicMaximizationAsMinimization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (objective 36 at (2,6)).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};
  lp.add_constraint({0}, {1.0}, Relation::LessEqual, 4.0);
  lp.add_constraint({1}, {2.0}, Relation::LessEqual, 12.0);
  lp.add_constraint({0, 1}, {3.0, 2.0}, Relation::LessEqual, 18.0);
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_NEAR(result.objective, -36.0, 1e-9);
  EXPECT_NEAR(result.x[0], 2.0, 1e-9);
  EXPECT_NEAR(result.x[1], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min 2x + 3y s.t. x + y == 4, x - y == 2  ->  x=3, y=1, objective 9.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.add_constraint({0, 1}, {1.0, 1.0}, Relation::Equal, 4.0);
  lp.add_constraint({0, 1}, {1.0, -1.0}, Relation::Equal, 2.0);
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 9.0, 1e-9);
  EXPECT_NEAR(result.x[0], 3.0, 1e-9);
  EXPECT_NEAR(result.x[1], 1.0, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  // x >= 3 and x <= 1 simultaneously.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_constraint({0}, {1.0}, Relation::GreaterEqual, 3.0);
  lp.add_constraint({0}, {1.0}, Relation::LessEqual, 1.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  // min -x with only x >= 1.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.add_constraint({0}, {1.0}, Relation::GreaterEqual, 1.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -5  (i.e. x >= 5).
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_constraint({0}, {-1.0}, Relation::LessEqual, -5.0);
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_NEAR(result.x[0], 5.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Redundant constraints stacked on the same vertex (classic degeneracy).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.add_constraint({0, 1}, {1.0, 1.0}, Relation::GreaterEqual, 1.0);
  lp.add_constraint({0, 1}, {2.0, 2.0}, Relation::GreaterEqual, 2.0);
  lp.add_constraint({0, 1}, {3.0, 3.0}, Relation::GreaterEqual, 3.0);
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);
}

TEST(Simplex, RejectsBadIndices) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_constraint({3}, {1.0}, Relation::GreaterEqual, 1.0);
  EXPECT_THROW(solve_lp(lp), PreconditionViolation);
}

TEST(Simplex, RejectsObjectiveSizeMismatch) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0};
  EXPECT_THROW(solve_lp(lp), PreconditionViolation);
}

TEST(Simplex, EmptyConstraintsOptimalAtZero) {
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {1.0, 2.0, 3.0};
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 0.0, 1e-12);
}

TEST(Simplex, SolutionSatisfiesAllConstraintsOnRandomCoveringLps) {
  // Random set-cover LPs: verify feasibility and that the objective is a
  // valid lower bound for the all-ones solution.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::size_t n = 12;
    LpProblem lp;
    lp.num_vars = n;
    for (std::size_t j = 0; j < n; ++j) lp.objective.push_back(rng.uniform(0.5, 3.0));
    const std::size_t rows = 6;
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<std::size_t> indices;
      std::vector<double> values;
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.chance(0.4)) {
          indices.push_back(j);
          values.push_back(1.0);
        }
      }
      if (indices.empty()) {
        indices.push_back(rng.uniform_index(n));
        values.push_back(1.0);
      }
      lp.add_constraint(std::move(indices), std::move(values), Relation::GreaterEqual, 1.0);
    }
    const auto result = solve_lp(lp);
    ASSERT_EQ(result.status, LpStatus::Optimal) << "seed " << seed;

    double all_ones = 0.0;
    for (double c : lp.objective) all_ones += c;
    EXPECT_LE(result.objective, all_ones + 1e-9);
    for (const auto& con : lp.constraints) {
      double lhs = 0.0;
      for (std::size_t k = 0; k < con.indices.size(); ++k) {
        lhs += con.values[k] * result.x[con.indices[k]];
      }
      EXPECT_GE(lhs, con.rhs - 1e-7) << "seed " << seed;
    }
    for (double x : result.x) EXPECT_GE(x, -1e-9);
  }
}

TEST(Simplex, TableauInvariantsHoldAcrossRandomCoverLps) {
  // With check_invariants on, every pivot validates the basis (unit
  // columns, zero basic reduced costs, non-negative RHS); a corrupt
  // tableau throws InvariantViolation instead of returning garbage.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.uniform_index(8);
    LpProblem lp;
    lp.num_vars = n;
    for (std::size_t j = 0; j < n; ++j) lp.objective.push_back(rng.uniform(0.5, 3.0));
    const std::size_t rows = 2 + rng.uniform_index(6);
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<std::size_t> indices;
      std::vector<double> values;
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.chance(0.5)) {
          indices.push_back(j);
          values.push_back(1.0);
        }
      }
      if (indices.empty()) {
        indices.push_back(rng.uniform_index(n));
        values.push_back(1.0);
      }
      lp.add_constraint(std::move(indices), std::move(values), Relation::GreaterEqual, 1.0);
    }

    LpOptions checked;
    checked.check_invariants = true;
    const auto audited = solve_lp(lp, checked);
    const auto plain = solve_lp(lp);
    ASSERT_EQ(audited.status, LpStatus::Optimal) << "trial " << trial;
    EXPECT_EQ(audited.status, plain.status);
    EXPECT_NEAR(audited.objective, plain.objective, 1e-9) << "trial " << trial;
  }
}

TEST(Simplex, TableauInvariantsHoldOnMixedRelations) {
  LpOptions checked;
  checked.check_invariants = true;

  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.add_constraint({0, 1}, {1.0, 1.0}, Relation::Equal, 4.0);
  lp.add_constraint({0, 1}, {1.0, -1.0}, Relation::Equal, 2.0);
  const auto result = solve_lp(lp, checked);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 9.0, 1e-9);

  LpProblem negative_rhs;  // row flip path: -x <= -1  ==  x >= 1
  negative_rhs.num_vars = 1;
  negative_rhs.objective = {1.0};
  negative_rhs.add_constraint({0}, {-1.0}, Relation::LessEqual, -1.0);
  const auto flipped = solve_lp(negative_rhs, checked);
  ASSERT_EQ(flipped.status, LpStatus::Optimal);
  EXPECT_NEAR(flipped.objective, 1.0, 1e-9);

  LpProblem infeasible;
  infeasible.num_vars = 1;
  infeasible.objective = {1.0};
  infeasible.add_constraint({0}, {1.0}, Relation::LessEqual, 1.0);
  infeasible.add_constraint({0}, {1.0}, Relation::GreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(infeasible, checked).status, LpStatus::Infeasible);
}

/// Multi-row >= instance: phase 1 has several artificials to drive out, so
/// a one-iteration cap cannot possibly finish feasibility.
LpProblem covering_like_lp() {
  LpProblem lp;
  lp.num_vars = 4;
  lp.objective = {2.0, 2.0, 1.5, 1.5};
  lp.add_constraint({0, 2}, {1.0, 1.0}, Relation::GreaterEqual, 1.0);
  lp.add_constraint({0, 1}, {1.0, 1.0}, Relation::GreaterEqual, 1.0);
  lp.add_constraint({1, 3}, {1.0, 1.0}, Relation::GreaterEqual, 1.0);
  return lp;
}

TEST(Simplex, IterationLimitReportsPhaseOne) {
  LpOptions options;
  options.max_iterations = 1;
  const auto result = solve_lp(covering_like_lp(), options);
  ASSERT_EQ(result.status, LpStatus::IterationLimit);
  EXPECT_EQ(result.limit_phase, 1);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(Simplex, IterationLimitReportsPhaseTwo) {
  // All-<= rows with positive rhs need no artificials, so phase 1 is
  // skipped entirely and the cap lands in phase 2.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};
  lp.add_constraint({0}, {1.0}, Relation::LessEqual, 4.0);
  lp.add_constraint({1}, {2.0}, Relation::LessEqual, 12.0);
  lp.add_constraint({0, 1}, {3.0, 2.0}, Relation::LessEqual, 18.0);
  LpOptions options;
  options.max_iterations = 1;
  const auto result = solve_lp(lp, options);
  ASSERT_EQ(result.status, LpStatus::IterationLimit);
  EXPECT_EQ(result.limit_phase, 2);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(Simplex, WorkBudgetChargesPivotsAndThrows) {
  WorkBudget budget;
  budget.max_lp_pivots = 2;
  LpOptions options;
  options.budget = &budget;
  EXPECT_THROW(solve_lp(covering_like_lp(), options), BudgetExhausted);
  EXPECT_GT(budget.lp_pivots, budget.max_lp_pivots);

  // The same solve fits comfortably under a generous cap and charges its
  // true pivot count.
  WorkBudget roomy;
  roomy.max_lp_pivots = 10000;
  LpOptions relaxed;
  relaxed.budget = &roomy;
  const auto result = solve_lp(covering_like_lp(), relaxed);
  ASSERT_EQ(result.status, LpStatus::Optimal);
  // One charge per loop entry: every pivot plus the final optimality check
  // of each phase.
  EXPECT_GE(roomy.lp_pivots, result.iterations);
  EXPECT_LE(roomy.lp_pivots, result.iterations + 2);
}

}  // namespace
}  // namespace mts
