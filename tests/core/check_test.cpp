#include "core/check.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"

namespace mts {
namespace {

TEST(Check, EnforceInvariantPassesOnTrue) {
  EXPECT_NO_THROW(enforce_invariant(true, "never reported"));
}

TEST(Check, EnforceInvariantThrowsWithContext) {
  try {
    enforce_invariant(false, "tableau basis corrupt");
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("invariant violated"), std::string::npos) << what;
    EXPECT_NE(what.find("tableau basis corrupt"), std::string::npos) << what;
  }
}

TEST(Check, InvariantViolationIsAnMtsError) {
  // Callers that already catch mts::Error (CLI, experiment harness) keep
  // working when an invariant check fires.
  EXPECT_THROW(enforce_invariant(false, "x"), Error);
}

#if defined(MTS_ENABLE_DCHECKS)

TEST(Check, DchecksPassOnTrueConditions) {
  MTS_DCHECK(2 + 2 == 4);
  MTS_DCHECK_EQ(1, 1);
  MTS_DCHECK_NE(1, 2);
  MTS_DCHECK_LT(1, 2);
  MTS_DCHECK_LE(2, 2);
  MTS_DCHECK_GT(3, 2);
  MTS_DCHECK_GE(3, 3);
}

TEST(CheckDeathTest, DcheckFailureAbortsWithMessage) {
  EXPECT_DEATH_IF_SUPPORTED(MTS_DCHECK_LT(7, 3), "MTS_DCHECK failed");
}

#else  // release: the macros must not evaluate their arguments at all

TEST(Check, DchecksCompileToNoOpsInRelease) {
  int evaluations = 0;
  MTS_DCHECK(++evaluations > 0);
  MTS_DCHECK_EQ(++evaluations, 123);
  MTS_DCHECK_NE(++evaluations, 0);
  MTS_DCHECK_LT(999, ++evaluations);
  MTS_DCHECK_GE(++evaluations, 999);
  EXPECT_EQ(evaluations, 0);
}

#endif  // MTS_ENABLE_DCHECKS

}  // namespace
}  // namespace mts
