#include "core/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/error.hpp"

namespace mts {
namespace {

TEST(Env, IntFallbackWhenUnset) {
  unsetenv("MTS_TEST_UNSET");
  EXPECT_EQ(env_int("MTS_TEST_UNSET", 42), 42);
}

TEST(Env, IntParsesValue) {
  setenv("MTS_TEST_INT", "17", 1);
  EXPECT_EQ(env_int("MTS_TEST_INT", 0), 17);
  unsetenv("MTS_TEST_INT");
}

TEST(Env, IntFallbackOnGarbage) {
  setenv("MTS_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env_int("MTS_TEST_INT", 5), 5);
  unsetenv("MTS_TEST_INT");
}

TEST(Env, DoubleParsesValue) {
  setenv("MTS_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("MTS_TEST_DBL", 0.0), 2.5);
  unsetenv("MTS_TEST_DBL");
}

// env_raw is the repo's single audited getenv entry point (the
// no-raw-getenv lint rule routes every other caller through it); it must
// behave exactly like the libc read it wraps.
TEST(Env, RawReadsTheEnvironment) {
  setenv("MTS_TEST_RAW", "route-based", 1);
  const char* value = env_raw("MTS_TEST_RAW");
  ASSERT_NE(value, nullptr);
  EXPECT_STREQ(value, "route-based");
  unsetenv("MTS_TEST_RAW");
  EXPECT_EQ(env_raw("MTS_TEST_RAW"), nullptr);
}

// env_threads is the strict MTS_THREADS reader: a malformed thread count
// must be an error, never a silent fall-through to the hardware default
// (a negative value used to flow into a pool-size cast).
TEST(Env, ThreadsUnsetOrEmptyMeansAuto) {
  unsetenv("MTS_THREADS");
  EXPECT_EQ(env_threads(), 0u);
  setenv("MTS_THREADS", "", 1);
  EXPECT_EQ(env_threads(), 0u);
  unsetenv("MTS_THREADS");
}

TEST(Env, ThreadsParsesPositiveCount) {
  setenv("MTS_THREADS", "8", 1);
  EXPECT_EQ(env_threads(), 8u);
  unsetenv("MTS_THREADS");
}

TEST(Env, ThreadsRejectsNegative) {
  setenv("MTS_THREADS", "-2", 1);
  EXPECT_THROW(env_threads(), InvalidInput);
  try {
    env_threads();
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("MTS_THREADS"), std::string::npos) << e.what();
  }
  unsetenv("MTS_THREADS");
}

TEST(Env, ThreadsRejectsGarbageAndTrailingJunk) {
  for (const char* bad : {"four", "4x", "4 2", "0x4", "1e3", "99999999999999999999"}) {
    setenv("MTS_THREADS", bad, 1);
    EXPECT_THROW(env_threads(), InvalidInput) << "accepted MTS_THREADS=" << bad;
  }
  unsetenv("MTS_THREADS");
}

TEST(Env, ThreadsRejectsAbsurdCount) {
  setenv("MTS_THREADS", "99999999", 1);
  EXPECT_THROW(env_threads(), InvalidInput);
  unsetenv("MTS_THREADS");
}

TEST(Env, BenchEnvDefaults) {
  unsetenv("MTS_SCALE");
  unsetenv("MTS_TRIALS");
  unsetenv("MTS_SEED");
  unsetenv("MTS_PATH_RANK");
  const auto env = BenchEnv::from_environment();
  EXPECT_DOUBLE_EQ(env.scale, 1.0);
  EXPECT_EQ(env.trials, 24);
  EXPECT_EQ(env.seed, 7u);
  EXPECT_EQ(env.path_rank, 100);
}

TEST(Env, BenchEnvOverrides) {
  setenv("MTS_SCALE", "2.5", 1);
  setenv("MTS_TRIALS", "40", 1);
  setenv("MTS_SEED", "99", 1);
  setenv("MTS_PATH_RANK", "200", 1);
  const auto env = BenchEnv::from_environment();
  EXPECT_DOUBLE_EQ(env.scale, 2.5);
  EXPECT_EQ(env.trials, 40);
  EXPECT_EQ(env.seed, 99u);
  EXPECT_EQ(env.path_rank, 200);
  unsetenv("MTS_SCALE");
  unsetenv("MTS_TRIALS");
  unsetenv("MTS_SEED");
  unsetenv("MTS_PATH_RANK");
}

}  // namespace
}  // namespace mts
