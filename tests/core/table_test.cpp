#include "core/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace mts {
namespace {

Table sample_table() {
  Table table("Demo", {"City", "Nodes"});
  table.add_row({"Boston", "11171"});
  table.add_row({"Chicago", "29299"});
  return table;
}

TEST(Table, RejectsMismatchedRow) {
  Table table("T", {"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionViolation);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table("T", {}), PreconditionViolation);
}

TEST(Table, TextRenderingContainsAlignedCells) {
  std::ostringstream out;
  sample_table().render_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("Boston"), std::string::npos);
  EXPECT_NE(text.find("29299"), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  std::ostringstream out;
  sample_table().render_markdown(out);
  const std::string md = out.str();
  EXPECT_NE(md.find("### Demo"), std::string::npos);
  EXPECT_NE(md.find("| City | Nodes |"), std::string::npos);
  EXPECT_NE(md.find("| Boston | 11171 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table("T", {"name", "note"});
  table.add_row({"a,b", "say \"hi\""});
  std::ostringstream out;
  table.render_csv(out);
  EXPECT_EQ(out.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, SaveCsvCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "mts_table_test";
  std::filesystem::remove_all(dir);
  const auto path = dir / "sub" / "out.csv";
  sample_table().save_csv(path.string());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "City,Nodes");
  std::filesystem::remove_all(dir);
}

TEST(FormatFixed, RoundsToRequestedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.145, 2), "3.15");  // round-half behavior of iostreams
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

}  // namespace
}  // namespace mts
