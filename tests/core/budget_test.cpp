// WorkBudget unit tests (core/budget.hpp): cap semantics, spec parsing,
// the taxonomy classification of BudgetExhausted, and the armed wall-clock
// deadline (DeadlineExceeded) used by the routed serving path.
#include "core/budget.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace mts {
namespace {

TEST(WorkBudgetTest, DefaultIsUnlimited) {
  WorkBudget budget;
  EXPECT_FALSE(budget.limited());
  // Unlimited caps never throw, whatever the charge.
  budget.charge_edges_scanned(1'000'000'000ULL);
  budget.charge_lp_pivots(1'000'000'000ULL);
  budget.charge_spur_searches(1'000'000'000ULL);
  EXPECT_EQ(budget.edges_scanned, 1'000'000'000ULL);
}

TEST(WorkBudgetTest, ThrowsExactlyWhenACapIsExceeded) {
  WorkBudget budget;
  budget.max_lp_pivots = 10;
  EXPECT_TRUE(budget.limited());
  for (int i = 0; i < 10; ++i) budget.charge_lp_pivots(1);  // at the cap: fine
  EXPECT_THROW(budget.charge_lp_pivots(1), BudgetExhausted);
}

TEST(WorkBudgetTest, CapsAreIndependent) {
  WorkBudget budget;
  budget.max_edges_scanned = 5;
  budget.charge_lp_pivots(100);   // uncapped counters stay unlimited
  budget.charge_spur_searches(100);
  EXPECT_THROW(budget.charge_edges_scanned(6), BudgetExhausted);
}

TEST(WorkBudgetTest, ExhaustionMessageNamesCounterAndCap) {
  WorkBudget budget;
  budget.max_spur_searches = 3;
  try {
    budget.charge_spur_searches(4);
    FAIL() << "cap did not trigger";
  } catch (const BudgetExhausted& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("spur_searches"), std::string::npos) << what;
    EXPECT_NE(what.find('3'), std::string::npos) << what;
  }
}

TEST(WorkBudgetTest, TaxonomyClassifiesExhaustion) {
  WorkBudget budget;
  budget.max_edges_scanned = 1;
  try {
    budget.charge_edges_scanned(2);
  } catch (...) {
    EXPECT_EQ(current_exception_taxonomy().rfind("budget-exhausted: ", 0), 0u);
  }
}

TEST(WorkBudgetTest, ParseAcceptsAnySubsetInAnyOrder) {
  const WorkBudget all = WorkBudget::parse("edges=100,pivots=20,spurs=3");
  EXPECT_EQ(all.max_edges_scanned, 100u);
  EXPECT_EQ(all.max_lp_pivots, 20u);
  EXPECT_EQ(all.max_spur_searches, 3u);

  const WorkBudget reordered = WorkBudget::parse("spurs=3,edges=100");
  EXPECT_EQ(reordered.max_edges_scanned, 100u);
  EXPECT_EQ(reordered.max_lp_pivots, 0u);
  EXPECT_EQ(reordered.max_spur_searches, 3u);

  const WorkBudget one = WorkBudget::parse("pivots=1");
  EXPECT_TRUE(one.limited());
  EXPECT_EQ(one.max_lp_pivots, 1u);
}

TEST(WorkBudgetTest, ParseRejectsUnknownKeysAndBadCounts) {
  EXPECT_THROW(WorkBudget::parse("edge=100"), InvalidInput);
  EXPECT_THROW(WorkBudget::parse("edges"), InvalidInput);
  EXPECT_THROW(WorkBudget::parse("edges=0"), InvalidInput);
  EXPECT_THROW(WorkBudget::parse("edges=-5"), InvalidInput);
  EXPECT_THROW(WorkBudget::parse("edges=many"), InvalidInput);
}

TEST(WorkBudgetTest, ArmedDeadlineMakesBudgetLimited) {
  const Stopwatch clock;
  WorkBudget budget;
  EXPECT_FALSE(budget.limited());
  budget.arm_deadline(&clock, clock.seconds() + 3600.0);
  // A deadline alone is enough to thread the budget into the hot path --
  // that is how engines pick up the check without any new plumbing.
  EXPECT_TRUE(budget.limited());
  budget.charge_edges_scanned(1'000'000ULL);  // far-future deadline: no throw
  EXPECT_FALSE(budget.deadline_expired());
}

TEST(WorkBudgetTest, ExpiredDeadlineThrowsWithinTheCheckInterval) {
  const Stopwatch clock;
  WorkBudget budget;
  budget.arm_deadline(&clock, clock.seconds());  // already expired
  EXPECT_TRUE(budget.deadline_expired());
  // The probe runs every kDeadlineCheckInterval charges, so a charge loop
  // must notice the expiry within one interval's worth of single charges.
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i <= WorkBudget::kDeadlineCheckInterval; ++i) {
          budget.charge_edges_scanned(1);
        }
      },
      DeadlineExceeded);
}

TEST(WorkBudgetTest, TaxonomyClassifiesDeadlineBeforeBudget) {
  const Stopwatch clock;
  WorkBudget budget;
  budget.max_edges_scanned = 1;  // both caps would fire; deadline wins naming
  budget.arm_deadline(&clock, clock.seconds());
  try {
    for (std::size_t i = 0; i <= WorkBudget::kDeadlineCheckInterval; ++i) {
      budget.charge_edges_scanned(0);  // no work counted: only the clock trips
    }
    FAIL() << "expired deadline did not throw";
  } catch (...) {
    EXPECT_EQ(current_exception_taxonomy().rfind("deadline-exceeded: ", 0), 0u);
  }
}

}  // namespace
}  // namespace mts
