#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/error.hpp"

namespace mts {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRangeAndCoversEndpoints) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionViolation);
}

TEST(Rng, UniformRealBoundsAndMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.uniform(2.0, 4.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 4.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 3.0, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  constexpr int kDraws = 40000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(DeriveSeed, DeterministicAndOrderSensitive) {
  EXPECT_EQ(derive_seed(1, {2, 3}), derive_seed(1, {2, 3}));
  EXPECT_NE(derive_seed(1, {2, 3}), derive_seed(1, {3, 2}));
  EXPECT_NE(derive_seed(1, {2, 3}), derive_seed(2, {2, 3}));
}

TEST(DeriveSeed, NoCollisionsAcrossAdjacentSeedsAndCoordinates) {
  // The additive scheme this replaced (seed + ci * 131 + algorithm) collides
  // whenever adjacent base seeds or coordinate combinations alias; the mixed
  // derivation must keep every nearby (seed, trial, cost, algorithm) cell
  // distinct.
  std::set<std::uint64_t> seen;
  std::size_t cells = 0;
  for (std::uint64_t seed : {7u, 8u, 9u, 138u}) {  // 138 == 7 + 1*131
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
      for (std::uint64_t ci = 0; ci < 3; ++ci) {
        for (std::uint64_t ai = 0; ai < 4; ++ai) {
          seen.insert(derive_seed(seed, {trial, ci, ai}));
          ++cells;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), cells);
}

TEST(DeriveSeed, AdjacentStreamsAreStatisticallyIndependent) {
  Rng a(derive_seed(42, {0}));
  Rng b(derive_seed(42, {1}));
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIndexWithinBounds) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniform_index(7), 7u);
  EXPECT_THROW(rng.uniform_index(0), PreconditionViolation);
}

}  // namespace
}  // namespace mts
