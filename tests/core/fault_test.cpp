// Fault-injection registry unit tests (core/fault.hpp): exact-hit firing,
// spec parsing, and the disarmed fast path staying inert.
#include "core/fault.hpp"

#include <gtest/gtest.h>

namespace mts::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::instance().reset(); }
  void TearDown() override { FaultRegistry::instance().reset(); }
};

TEST_F(FaultTest, DisarmedByDefaultAfterReset) {
  EXPECT_FALSE(faults_enabled());
  // The macro short-circuits on faults_enabled(); nothing fires, nothing
  // throws.
  MTS_FAULT_POINT("fault-test.disarmed");
  EXPECT_EQ(MTS_FAULT_ACTION("fault-test.disarmed"), Action::None);
}

TEST_F(FaultTest, FiresExactlyOnTheArmedHit) {
  auto& registry = FaultRegistry::instance();
  registry.arm("fault-test.exact", 3, Action::Throw);
  EXPECT_TRUE(faults_enabled());
  const PointId id = registry.point("fault-test.exact");
  EXPECT_EQ(registry.hit(id), Action::None);
  EXPECT_EQ(registry.hit(id), Action::None);
  EXPECT_EQ(registry.hit(id), Action::Throw);
  // One-shot: later hits are silent again.
  EXPECT_EQ(registry.hit(id), Action::None);
  EXPECT_EQ(registry.hit(id), Action::None);
}

TEST_F(FaultTest, PlainSiteEscalatesEveryActionToThrow) {
  for (const Action action : {Action::Throw, Action::Nan, Action::Limit}) {
    FaultRegistry::instance().reset();
    FaultRegistry::instance().arm("fault-test.plain", 1, action);
    EXPECT_THROW(MTS_FAULT_POINT("fault-test.plain"), FaultInjected) << to_string(action);
  }
}

TEST_F(FaultTest, ValueSiteReportsTheArmedAction) {
  FaultRegistry::instance().arm("fault-test.value", 2, Action::Nan);
  EXPECT_EQ(MTS_FAULT_ACTION("fault-test.value"), Action::None);
  EXPECT_EQ(MTS_FAULT_ACTION("fault-test.value"), Action::Nan);
  EXPECT_EQ(MTS_FAULT_ACTION("fault-test.value"), Action::None);
}

TEST_F(FaultTest, ArmValidatesItsArguments) {
  EXPECT_THROW(FaultRegistry::instance().arm("p", 0, Action::Throw), PreconditionViolation);
  EXPECT_THROW(FaultRegistry::instance().arm("p", 1, Action::None), PreconditionViolation);
}

TEST_F(FaultTest, SpecParsingArmsEveryEntry) {
  auto& registry = FaultRegistry::instance();
  registry.arm_from_spec("fault-test.a:after=1:throw,fault-test.b:after=7:limit");
  EXPECT_TRUE(faults_enabled());
  EXPECT_EQ(registry.hit(registry.point("fault-test.a")), Action::Throw);
  const PointId b = registry.point("fault-test.b");
  for (int i = 0; i < 6; ++i) EXPECT_EQ(registry.hit(b), Action::None);
  EXPECT_EQ(registry.hit(b), Action::Limit);
}

TEST_F(FaultTest, SpecParsingRejectsMalformedEntries) {
  auto& registry = FaultRegistry::instance();
  EXPECT_THROW(registry.arm_from_spec("lp.pivot"), InvalidInput);
  EXPECT_THROW(registry.arm_from_spec("lp.pivot:after=100"), InvalidInput);
  EXPECT_THROW(registry.arm_from_spec("lp.pivot:count=100:throw"), InvalidInput);
  EXPECT_THROW(registry.arm_from_spec("lp.pivot:after=0:throw"), InvalidInput);
  EXPECT_THROW(registry.arm_from_spec("lp.pivot:after=ten:throw"), InvalidInput);
  EXPECT_THROW(registry.arm_from_spec("lp.pivot:after=1:explode"), InvalidInput);
  EXPECT_THROW(registry.arm_from_spec(":after=1:throw"), InvalidInput);
}

TEST_F(FaultTest, ThrowInjectedNamesThePointAndTaxonomyClassifiesIt) {
  try {
    throw_injected("oracle.solve", Action::Limit);
    FAIL() << "throw_injected returned";
  } catch (const FaultInjected& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("oracle.solve"), std::string::npos);
    EXPECT_NE(what.find("limit"), std::string::npos);
  }
  try {
    throw_injected("lp.pivot", Action::Throw);
  } catch (...) {
    const std::string taxonomy = current_exception_taxonomy();
    EXPECT_EQ(taxonomy.rfind("fault-injected: ", 0), 0u) << taxonomy;
  }
}

TEST_F(FaultTest, StallActionParsesAndReportsAtValueSites) {
  // `stall` joins the spec grammar; plain sites still escalate it to a
  // throw (they have no way to emulate a wedge), value sites see it and
  // sleep natively (net.write does).
  auto& registry = FaultRegistry::instance();
  registry.arm_from_spec("fault-test.stall:after=2:stall");
  EXPECT_EQ(MTS_FAULT_ACTION("fault-test.stall"), Action::None);
  EXPECT_EQ(MTS_FAULT_ACTION("fault-test.stall"), Action::Stall);
  EXPECT_EQ(to_string(Action::Stall), "stall");
  registry.reset();
  registry.arm("fault-test.stall-plain", 1, Action::Stall);
  EXPECT_THROW(MTS_FAULT_POINT("fault-test.stall-plain"), FaultInjected);
}

TEST_F(FaultTest, KnownPointsAreArmable) {
  for (const char* name : kKnownPoints) {
    FaultRegistry::instance().arm(name, 1, Action::Throw);
    const PointId id = FaultRegistry::instance().point(name);
    EXPECT_EQ(FaultRegistry::instance().hit(id), Action::Throw) << name;
  }
}

}  // namespace
}  // namespace mts::fault
