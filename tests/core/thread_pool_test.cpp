#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mts {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.parallel_for(ids.size(), [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("task failed");
                                 }),
               std::runtime_error);
  // The pool must survive a failed job and run the next one normally.
  std::atomic<int> done{0};
  pool.parallel_for(32, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, NestedUseIsAPreconditionViolation) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4, [&](std::size_t) { pool.parallel_for(2, [](std::size_t) {}); }),
               PreconditionViolation);
}

TEST(ThreadPool, GlobalNestedUseIsAPreconditionViolation) {
  set_num_threads(2);
  EXPECT_THROW(
      parallel_for(4, [](std::size_t) { parallel_for(2, [](std::size_t) {}); }),
      PreconditionViolation);
  set_num_threads(0);
}

TEST(ThreadPool, OverrideAndEnvResolution) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(0);  // back to MTS_THREADS / hardware
  ASSERT_EQ(setenv("MTS_THREADS", "5", 1), 0);
  EXPECT_EQ(num_threads(), 5u);
  ASSERT_EQ(unsetenv("MTS_THREADS"), 0);
  EXPECT_GE(num_threads(), 1u);  // hardware concurrency fallback, min 1
}

TEST(ThreadPool, GlobalParallelForCoversRangeAtEveryThreadCount) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::vector<std::atomic<int>> counts(257);
    parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "threads " << threads << " index " << i;
    }
  }
  set_num_threads(0);
}

TEST(ThreadPool, MalformedThreadEnvIsAnErrorNotAFallback) {
  // Regression: a bad MTS_THREADS used to fall back silently (and a
  // negative one flowed into the pool-size cast).  num_threads() now goes
  // through env_threads(), which rejects with the offending value.
  ASSERT_EQ(setenv("MTS_THREADS", "-3", 1), 0);
  set_num_threads(0);
  EXPECT_THROW(num_threads(), InvalidInput);
  ASSERT_EQ(setenv("MTS_THREADS", "lots", 1), 0);
  EXPECT_THROW(num_threads(), InvalidInput);
  ASSERT_EQ(unsetenv("MTS_THREADS"), 0);
  EXPECT_GE(num_threads(), 1u);
}

TEST(TaskQueue, RunsSubmittedTasksOnWorkerThreads) {
  TaskQueue queue(3);
  EXPECT_EQ(queue.num_workers(), 3u);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> ran{0};
  std::atomic<bool> on_caller{false};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(queue.submit([&](std::size_t worker) {
      EXPECT_LT(worker, 3u);
      if (std::this_thread::get_id() == caller) on_caller.store(true);
      ran.fetch_add(1);
    }));
  }
  queue.close();
  EXPECT_EQ(ran.load(), 100);
  // Unlike ThreadPool(1), TaskQueue workers are always dedicated threads:
  // the submitting thread (a connection reader) must never run queries.
  EXPECT_FALSE(on_caller.load());
  EXPECT_EQ(queue.tasks_run(), 100u);
}

TEST(TaskQueue, CloseDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    TaskQueue queue(2);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(queue.submit([&](std::size_t) { ran.fetch_add(1); }));
    }
    // Destructor closes; every already-submitted task must still run.
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(TaskQueue, SubmitAfterCloseIsRefused) {
  TaskQueue queue(1);
  queue.close();
  EXPECT_FALSE(queue.submit([](std::size_t) {}));
  queue.close();  // idempotent
}

TEST(TaskQueue, BoundedQueueRefusesExcessButRunsEveryAcceptedTask) {
  std::atomic<int> ran{0};
  {
    TaskQueue queue(1, 2);
    // Park the single worker so submissions pile up in the queue itself;
    // wait until it has actually dequeued the parking task, or the bound
    // would count it too.
    std::promise<void> parked;
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    ASSERT_EQ(queue.try_submit([&, opened](std::size_t) {
      parked.set_value();
      opened.wait();
      ran.fetch_add(1);
    }),
              TaskQueue::SubmitResult::Accepted);
    parked.get_future().wait();
    // The bound counts queued (not executing) tasks: two fit, a third is
    // refused with QueueFull -- never silently dropped, never blocking.
    ASSERT_EQ(queue.try_submit([&](std::size_t) { ran.fetch_add(1); }),
              TaskQueue::SubmitResult::Accepted);
    ASSERT_EQ(queue.try_submit([&](std::size_t) { ran.fetch_add(1); }),
              TaskQueue::SubmitResult::Accepted);
    EXPECT_EQ(queue.queued(), 2u);
    EXPECT_EQ(queue.try_submit([&](std::size_t) { ran.fetch_add(1); }),
              TaskQueue::SubmitResult::QueueFull);
    // The bool wrapper reports the same refusal.
    EXPECT_FALSE(queue.submit([&](std::size_t) { ran.fetch_add(1); }));
    gate.set_value();
    // Destructor closes and drains every accepted task.
  }
  EXPECT_EQ(ran.load(), 3);
}

TEST(TaskQueue, TrySubmitAfterCloseReportsClosed) {
  TaskQueue queue(1, 4);
  queue.close();
  EXPECT_EQ(queue.try_submit([](std::size_t) {}), TaskQueue::SubmitResult::Closed);
}

TEST(TaskQueue, UnboundedQueueNeverReportsFull) {
  TaskQueue queue(2);  // max_queued = 0: the pre-overload default
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(queue.try_submit([](std::size_t) {}), TaskQueue::SubmitResult::Accepted);
  }
  queue.close();
  EXPECT_EQ(queue.tasks_run(), 2000u);
}

TEST(TaskQueue, TaskExceptionsAreQuarantinedAsTaxonomy) {
  TaskQueue queue(2);
  std::atomic<int> ran{0};
  queue.submit([](std::size_t) { throw InvalidInput("bad request 7"); });
  queue.submit([&](std::size_t) { ran.fetch_add(1); });
  queue.close();
  // The throwing task neither killed its worker nor leaked the exception.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(queue.tasks_run(), 2u);
  const std::vector<std::string> errors = queue.task_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("invalid-input"), std::string::npos) << errors[0];
  EXPECT_NE(errors[0].find("bad request 7"), std::string::npos) << errors[0];
}

TEST(ThreadPool, PerIndexResultsIdenticalAcrossThreadCounts) {
  // The determinism contract: per-index output slots depend only on the
  // index, never on which thread ran it or in what order.
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(200);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      Rng rng(derive_seed(7, {i}));
      out[i] = rng();
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace mts
