#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mts {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.parallel_for(ids.size(), [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("task failed");
                                 }),
               std::runtime_error);
  // The pool must survive a failed job and run the next one normally.
  std::atomic<int> done{0};
  pool.parallel_for(32, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, NestedUseIsAPreconditionViolation) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4, [&](std::size_t) { pool.parallel_for(2, [](std::size_t) {}); }),
               PreconditionViolation);
}

TEST(ThreadPool, GlobalNestedUseIsAPreconditionViolation) {
  set_num_threads(2);
  EXPECT_THROW(
      parallel_for(4, [](std::size_t) { parallel_for(2, [](std::size_t) {}); }),
      PreconditionViolation);
  set_num_threads(0);
}

TEST(ThreadPool, OverrideAndEnvResolution) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(0);  // back to MTS_THREADS / hardware
  ASSERT_EQ(setenv("MTS_THREADS", "5", 1), 0);
  EXPECT_EQ(num_threads(), 5u);
  ASSERT_EQ(unsetenv("MTS_THREADS"), 0);
  EXPECT_GE(num_threads(), 1u);  // hardware concurrency fallback, min 1
}

TEST(ThreadPool, GlobalParallelForCoversRangeAtEveryThreadCount) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::vector<std::atomic<int>> counts(257);
    parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "threads " << threads << " index " << i;
    }
  }
  set_num_threads(0);
}

TEST(ThreadPool, PerIndexResultsIdenticalAcrossThreadCounts) {
  // The determinism contract: per-index output slots depend only on the
  // index, never on which thread ran it or in what order.
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(200);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      Rng rng(derive_seed(7, {i}));
      out[i] = rng();
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace mts
