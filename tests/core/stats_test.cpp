#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mts {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, NumericallyStableOnLargeOffsets) {
  RunningStats stats;
  // Naive sum-of-squares would lose all precision at this offset.
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) stats.add(v);
  EXPECT_NEAR(stats.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(stats.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(10.0, 4.0);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, MedianAndQuartiles) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.75), 7.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionViolation);
  EXPECT_THROW(percentile({1.0}, 1.5), PreconditionViolation);
}

}  // namespace
}  // namespace mts
