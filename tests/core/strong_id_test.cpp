#include "core/strong_id.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mts {
namespace {

TEST(StrongId, DefaultConstructedIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  NodeId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Comparisons) {
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
  EXPECT_LT(NodeId(3), NodeId(4));
  EXPECT_GT(NodeId(5), NodeId(4));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, EdgeId>);
  static_assert(!std::is_convertible_v<NodeId, EdgeId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);  // explicit only
}

TEST(StrongId, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId(1));
  set.insert(NodeId(2));
  set.insert(NodeId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId(2)));
  EXPECT_FALSE(set.contains(NodeId(3)));
}

TEST(StrongId, SixtyFourBitRep) {
  OsmNodeId big(1'000'000'000'000LL);
  EXPECT_EQ(big.value(), 1'000'000'000'000LL);
  EXPECT_TRUE(big.valid());
}

TEST(IdRange, IteratesDenseRange) {
  IdRange<NodeId> range(2, 5);
  std::vector<std::uint32_t> seen;
  for (NodeId id : range) seen.push_back(id.value());
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{2, 3, 4}));
  EXPECT_EQ(range.size(), 3u);
}

TEST(IdRange, EmptyRange) {
  IdRange<EdgeId> range(7, 7);
  EXPECT_EQ(range.size(), 0u);
  EXPECT_TRUE(range.begin() == range.end());
}

}  // namespace
}  // namespace mts
