#!/usr/bin/env python3
"""Fixture suite for tools/lint.py: every rule must fire on a synthetic
violating snippet with the exact rule id, path, and line number, and stay
quiet on the sanctioned patterns (allowlist entries, suppressions).

Each test builds a throwaway repo skeleton (src/ plus a healthy workflow
file), plants one violation, and asserts the reported triple.  Runs via the
`lint_tool` ctest entry or directly: python3 tests/tools/lint_tool_test.py
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT = REPO_ROOT / "tools" / "lint.py"

# A workflow that satisfies the ci-workflow rule (all ci.sh legs + tidy),
# so fixtures exercising other rules see no background noise.
HEALTHY_WORKFLOW = """\
jobs:
  ci:
    strategy:
      matrix:
        preset: [dev, asan, tsan, tidy]
"""

VIOLATION_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+): \[(?P<rule>[a-z-]+)\] ")


def run_lint(root: Path, *extra: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, str(LINT), "--root", str(root), *extra],
        capture_output=True, text=True, check=False)


def violations(proc: subprocess.CompletedProcess[str]) -> list[tuple[str, int, str]]:
    found = []
    for line in proc.stdout.splitlines():
        match = VIOLATION_RE.match(line)
        if match:
            found.append((match.group("path"), int(match.group("line")),
                          match.group("rule")))
    return found


def have_yaml() -> bool:
    try:
        import yaml  # noqa: F401
        return True
    except ImportError:
        return False


class LintFixtureTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="mts-lint-fixture-")
        self.root = Path(self._tmp.name)
        (self.root / "src").mkdir()
        workflow = self.root / ".github" / "workflows" / "ci.yml"
        workflow.parent.mkdir(parents=True)
        workflow.write_text(HEALTHY_WORKFLOW)

    def tearDown(self) -> None:
        self._tmp.cleanup()

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    def assert_fires(self, rel: str, line: int, rule: str) -> None:
        proc = run_lint(self.root)
        self.assertIn((rel, line, rule), violations(proc),
                      f"expected {rel}:{line} [{rule}]; lint said:\n{proc.stdout}")
        self.assertEqual(proc.returncode, 1, proc.stderr)

    def assert_clean(self) -> None:
        proc = run_lint(self.root)
        self.assertEqual(violations(proc), [], proc.stdout)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("lint: ok", proc.stdout)

    # --- one fixture per rule -------------------------------------------

    def test_pragma_once(self) -> None:
        self.write("src/core/bad.hpp", "int answer();\n")
        self.assert_fires("src/core/bad.hpp", 1, "pragma-once")

    def test_no_rand(self) -> None:
        self.write("src/core/bad.cpp",
                   "#include <cstdlib>\n"
                   "int roll() {\n"
                   "  return std::rand();\n"
                   "}\n")
        self.assert_fires("src/core/bad.cpp", 3, "no-rand")

    def test_no_naked_new(self) -> None:
        self.write("src/core/bad.cpp",
                   "struct Node {};\n"
                   "Node* make() {\n"
                   "  return new Node();\n"
                   "}\n")
        self.assert_fires("src/core/bad.cpp", 3, "no-naked-new")

    def test_no_float(self) -> None:
        self.write("src/graph/bad.cpp",
                   "double widen(double w) {\n"
                   "  float narrow = 1.0;\n"
                   "  return w + narrow;\n"
                   "}\n")
        self.assert_fires("src/graph/bad.cpp", 2, "no-float")

    def test_require_throws(self) -> None:
        self.write("src/core/bad.cpp",
                   "#include \"core/error.hpp\"\n"
                   "void check(bool ok) {\n"
                   "  if (!ok) throw PreconditionViolation{\"nope\"};\n"
                   "}\n")
        self.assert_fires("src/core/bad.cpp", 3, "require-throws")

    def test_no_using_namespace_in_header(self) -> None:
        self.write("src/core/bad.hpp",
                   "#pragma once\n"
                   "using namespace std;\n")
        self.assert_fires("src/core/bad.hpp", 2, "no-using-ns")

    def test_no_const_cast_top(self) -> None:
        self.write("src/graph/bad.cpp",
                   "#include <queue>\n"
                   "struct Item {};\n"
                   "Item steal(std::priority_queue<Item>& q) {\n"
                   "  return std::move(const_cast<Item&>(q.top()));\n"
                   "}\n")
        self.assert_fires("src/graph/bad.cpp", 4, "no-const-cast-top")

    def test_no_bare_catch(self) -> None:
        self.write("src/exp/bad.cpp",
                   "void risky();\n"
                   "void swallow() {\n"
                   "  try {\n"
                   "    risky();\n"
                   "  } catch (...) {\n"
                   "  }\n"
                   "}\n")
        self.assert_fires("src/exp/bad.cpp", 5, "no-bare-catch")

    def test_no_bare_catch_rethrow_is_fine(self) -> None:
        self.write("src/exp/ok.cpp",
                   "void risky();\n"
                   "void forward() {\n"
                   "  try {\n"
                   "    risky();\n"
                   "  } catch (...) {\n"
                   "    throw;\n"
                   "  }\n"
                   "}\n")
        self.assert_clean()

    def test_no_raw_clock(self) -> None:
        self.write("src/exp/bad.cpp",
                   "#include <chrono>\n"
                   "double stamp() {\n"
                   "  auto t = std::chrono::steady_clock::now();\n"
                   "  return t.time_since_epoch().count();\n"
                   "}\n")
        self.assert_fires("src/exp/bad.cpp", 3, "no-raw-clock")

    def test_no_search_alloc(self) -> None:
        self.write("src/graph/dijkstra.cpp",
                   "#include <vector>\n"
                   "struct Graph { int num_nodes() const; };\n"
                   "void run(const Graph& g) {\n"
                   "  std::vector<double> dist(g.num_nodes());\n"
                   "}\n")
        self.assert_fires("src/graph/dijkstra.cpp", 4, "no-search-alloc")

    def test_no_raw_getenv(self) -> None:
        self.write("src/exp/bad.cpp",
                   "#include <cstdlib>\n"
                   "const char* knob() {\n"
                   "  return std::getenv(\"MTS_SCALE\");\n"
                   "}\n")
        self.assert_fires("src/exp/bad.cpp", 3, "no-raw-getenv")

    def test_no_mutable_global(self) -> None:
        self.write("src/core/bad.hpp",
                   "#pragma once\n"
                   "int g_call_count = 0;\n")
        self.assert_fires("src/core/bad.hpp", 2, "no-mutable-global")

    def test_no_mutable_global_exemptions(self) -> None:
        # const, thread_local, and the registered override singletons are
        # all sanctioned forms of namespace-scope state.
        self.write("src/core/ok.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "constexpr int kLimit = 8;\n"
                   "thread_local int t_depth = 0;\n")
        self.write("src/obs/metrics.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "inline std::atomic<int> g_metrics_override{-1};\n")
        self.assert_clean()

    def test_no_unordered_output(self) -> None:
        self.write("src/exp/bad.cpp",
                   "#include <unordered_map>\n"
                   "int total(const std::unordered_map<int, int>& unused);\n"
                   "void emit() {\n"
                   "  std::unordered_map<int, int> table;\n"
                   "  for (const auto& [key, value] : table) {\n"
                   "  }\n"
                   "}\n")
        self.assert_fires("src/exp/bad.cpp", 5, "no-unordered-output")

    def test_ci_workflow_missing_file(self) -> None:
        (self.root / ".github" / "workflows" / "ci.yml").unlink()
        self.assert_fires(".github/workflows/ci.yml", 1, "ci-workflow")

    @unittest.skipUnless(have_yaml(), "PyYAML unavailable")
    def test_ci_workflow_missing_legs(self) -> None:
        self.write(".github/workflows/ci.yml",
                   "jobs:\n"
                   "  ci:\n"
                   "    strategy:\n"
                   "      matrix:\n"
                   "        preset: [dev, asan]\n")
        proc = run_lint(self.root)
        rules = [v for v in violations(proc) if v[2] == "ci-workflow"]
        # Both gaps are reported: the tsan leg and the tidy gate.
        self.assertEqual(len(rules), 2, proc.stdout)
        self.assertIn("tsan", proc.stdout)
        self.assertIn("tidy", proc.stdout)

    # --- suppressions ----------------------------------------------------

    def test_suppression_on_previous_line(self) -> None:
        self.write("src/exp/ok.cpp",
                   "#include <cstdlib>\n"
                   "const char* knob() {\n"
                   "  // bootstrap read, audited here: mts-lint: allow(no-raw-getenv)\n"
                   "  return std::getenv(\"MTS_SCALE\");\n"
                   "}\n")
        self.assert_clean()

    def test_suppression_on_same_line(self) -> None:
        self.write("src/exp/ok.cpp",
                   "#include <cstdlib>\n"
                   "const char* knob() {\n"
                   "  return std::getenv(\"MTS_X\");  // mts-lint: allow(no-raw-getenv)\n"
                   "}\n")
        self.assert_clean()

    def test_suppression_is_rule_specific(self) -> None:
        # An allow() for a different rule must not mask the violation.
        self.write("src/exp/bad.cpp",
                   "#include <cstdlib>\n"
                   "const char* knob() {\n"
                   "  // mts-lint: allow(no-float)\n"
                   "  return std::getenv(\"MTS_X\");\n"
                   "}\n")
        self.assert_fires("src/exp/bad.cpp", 4, "no-raw-getenv")

    # --- incremental mode and output contract ----------------------------

    def test_files_mode_restricts_scope(self) -> None:
        self.write("src/core/one.cpp", "double a() {\n  float x = 1.0;\n  return x;\n}\n")
        self.write("src/core/two.cpp", "double b() {\n  float x = 2.0;\n  return x;\n}\n")
        proc = run_lint(self.root, "--files", "src/core/one.cpp")
        self.assertEqual(violations(proc), [("src/core/one.cpp", 2, "no-float")],
                         proc.stdout)

    def test_files_mode_skips_workflow_unless_listed(self) -> None:
        self.write(".github/workflows/ci.yml", "jobs: {}\n")
        self.write("src/core/one.cpp", "double a() {\n  float x = 1.0;\n  return x;\n}\n")
        proc = run_lint(self.root, "--files", "src/core/one.cpp")
        self.assertEqual([v[2] for v in violations(proc)], ["no-float"], proc.stdout)
        if have_yaml():
            proc = run_lint(self.root, "--files", ".github/workflows/ci.yml")
            self.assertEqual([v[2] for v in violations(proc)], ["ci-workflow"],
                             proc.stdout)

    def test_output_is_sorted(self) -> None:
        # Two files, multiple rules each; output must be (path, line, rule)
        # sorted regardless of rule execution order inside lint.py.
        self.write("src/core/zeta.cpp",
                   "double late() {\n"
                   "  float x = 1.0;\n"
                   "  return x;\n"
                   "}\n")
        self.write("src/core/alpha.cpp",
                   "#include <cstdlib>\n"
                   "double early() {\n"
                   "  float x = 1.0;\n"
                   "  const char* v = std::getenv(\"MTS_X\");\n"
                   "  return v != nullptr ? x : 0.0;\n"
                   "}\n")
        proc = run_lint(self.root)
        found = violations(proc)
        self.assertEqual(found, sorted(found), proc.stdout)
        self.assertEqual([v[0] for v in found],
                         ["src/core/alpha.cpp", "src/core/alpha.cpp",
                          "src/core/zeta.cpp"], proc.stdout)

    def test_clean_tree_passes(self) -> None:
        self.write("src/core/ok.cpp",
                   "int answer() {\n"
                   "  return 42;\n"
                   "}\n")
        self.assert_clean()

    def test_wrong_root_is_an_error(self) -> None:
        with tempfile.TemporaryDirectory() as empty:
            proc = run_lint(Path(empty))
            self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
