// Fuzz-style hardening tests for the routed wire protocol, in the mold of
// integration/fuzz_test.cpp: byte-level mutations of valid inputs where the
// only sanctioned outcomes are a successful parse or InvalidInput — never a
// crash, never any other exception type.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "net/framing.hpp"
#include "net/protocol.hpp"

namespace mts::net {
namespace {

const std::vector<std::string>& valid_request_lines() {
  static const std::vector<std::string> lines = {
      "ping 1",
      "graph 2",
      "route 3 10 20",
      "route 4 10 20 length",
      "kalt 5 10 20 8",
      "kalt 6 10 20 8 time",
      "attack 7 10 20 16 greedy-pathcover",
      "attack 8 10 20 16 lp-pathcover length",
  };
  return lines;
}

/// One byte-level mutation in the fuzz_test.cpp style: flip a byte to a
/// hostile value, delete it, duplicate it, or truncate the line there.
std::string mutate_line(const std::string& base, Rng& rng) {
  static const char kHostileBytes[] = {'\0', '\n', '\r', ' ',    '=',    '-',
                                       '9',  'z',  '.',  '\xff', '\x80', '\x01'};
  std::string mutated = base;
  if (mutated.empty()) return mutated;
  const std::size_t pos = rng.uniform_index(mutated.size());
  switch (rng.uniform_index(4)) {
    case 0:
      mutated[pos] = kHostileBytes[rng.uniform_index(sizeof kHostileBytes)];
      break;
    case 1:
      mutated.erase(pos, 1);
      break;
    case 2:
      mutated.insert(pos, 1, mutated[pos]);
      break;
    default:
      mutated.resize(pos);
      break;
  }
  return mutated;
}

TEST(ProtocolFuzz, MutatedRequestsParseOrRejectCleanly) {
  Rng rng(4815162342ULL);
  const auto& bases = valid_request_lines();
  int parsed_ok = 0;
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string line = bases[rng.uniform_index(bases.size())];
    const std::size_t mutations = 1 + rng.uniform_index(3);
    for (std::size_t m = 0; m < mutations; ++m) line = mutate_line(line, rng);
    try {
      const Request request = parse_request(line);
      // Anything accepted must round-trip exactly: the parser may never
      // accept a line it cannot re-serialize to an equivalent request.
      EXPECT_EQ(parse_request(serialize_request(request)), request) << "line: '" << line << "'";
      ++parsed_ok;
    } catch (const InvalidInput&) {
      ++rejected;  // the only sanctioned failure
    }
  }
  EXPECT_EQ(parsed_ok + rejected, 400);
  EXPECT_GT(rejected, 0);
}

TEST(ProtocolFuzz, MutatedResponsesParseOrRejectCleanly) {
  const std::vector<std::string> bases = {
      "ok 1 pong",
      "ok 2 graph nodes=120 edges=400 pois=6",
      "ok 3 route found=1 dist=17.25 hops=9",
      "ok 4 kalt paths=8 best=17.25 worst=31.5",
      "ok 5 attack status=success removed=4 cost=4",
      "err 6 invalid-input: node 999 out of range",
      "err 7 budget-exhausted: edges_scanned limit 1000 exceeded",
  };
  Rng rng(271828182845ULL);
  int parsed_ok = 0;
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string line = bases[rng.uniform_index(bases.size())];
    const std::size_t mutations = 1 + rng.uniform_index(3);
    for (std::size_t m = 0; m < mutations; ++m) line = mutate_line(line, rng);
    try {
      (void)parse_response(line);
      ++parsed_ok;
    } catch (const InvalidInput&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed_ok + rejected, 400);
  EXPECT_GT(rejected, 0);
}

TEST(ProtocolFuzz, InvalidUtf8AndControlBytesAreRejectedNotCrashed) {
  const char* hostile[] = {
      "ping\xff 1",
      "\xffping 1",
      "route 1 2\x80 3",
      "ping \x01",
      "attack 1 2 3 4 greedy\xc3\x28pathcover",
      "kalt 1 2 3 \xf0\x9f\x9a\x97",
  };
  for (const char* line : hostile) {
    EXPECT_THROW(parse_request(line), InvalidInput) << "accepted: '" << line << "'";
  }
  // A NUL inside the line must not truncate parsing at the C-string level.
  std::string nul_line = "ping 1";
  nul_line += '\0';
  nul_line += "2";
  EXPECT_THROW(parse_request(nul_line), InvalidInput);
}

TEST(ProtocolFuzz, TornStreamReassemblyIsChunkingInvariant) {
  // The same byte stream split at random chunk boundaries must yield the
  // same request sequence a whole-stream feed does.
  std::string stream;
  for (const std::string& line : valid_request_lines()) {
    stream += line;
    stream += '\n';
  }

  std::vector<Request> whole;
  {
    LineFramer framer;
    framer.feed(stream);
    std::string line;
    while (framer.next_line(line)) whole.push_back(parse_request(line));
  }
  ASSERT_EQ(whole.size(), valid_request_lines().size());

  Rng rng(5551212ULL);
  for (int trial = 0; trial < 50; ++trial) {
    LineFramer framer;
    std::vector<Request> torn;
    std::string line;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk = 1 + rng.uniform_index(7);
      const std::size_t take = std::min(chunk, stream.size() - offset);
      framer.feed(std::string_view(stream).substr(offset, take));
      offset += take;
      while (framer.next_line(line)) torn.push_back(parse_request(line));
    }
    EXPECT_EQ(torn, whole) << "trial " << trial;
  }
}

TEST(ProtocolFuzz, OversizedRequestsNeverReachTheParser) {
  // A request far beyond the line cap is cut off by the framer with
  // InvalidInput in both framings: terminated (popped then rejected) and
  // unterminated (rejected at feed time).
  LineFramer terminated(64);
  terminated.feed("route 1 " + std::string(200, '9') + " 3\nping 2\n");
  std::string line;
  EXPECT_THROW(terminated.next_line(line), InvalidInput);
  ASSERT_TRUE(terminated.next_line(line));
  EXPECT_EQ(parse_request(line).verb, Verb::Ping);

  LineFramer unterminated(64);
  EXPECT_THROW(unterminated.feed(std::string(200, 'a')), InvalidInput);
}

}  // namespace
}  // namespace mts::net
