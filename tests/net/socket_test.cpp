// Socket-layer tests below the protocol: partial writes under a tiny
// SO_SNDBUF, EINTR mid-syscall, the write_all_for timeout contract, and
// shutdown semantics.  Built on socketpair() so both ends live in-process
// and the kernel buffer sizes are under test control.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>

#include "core/error.hpp"
#include "net/socket.hpp"

namespace mts::net {
namespace {

/// A connected in-process socket pair with deliberately tiny kernel
/// buffers, so multi-hundred-KiB transfers are forced through many short
/// writes and short reads.
struct TinyBufferPair {
  Socket a;
  Socket b;

  TinyBufferPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair: " << std::strerror(errno);
      return;
    }
    const int small = 1;  // the kernel clamps this up to its floor, still tiny
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
    ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof small);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

std::string patterned_payload(std::size_t size) {
  std::string payload(size, '\0');
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<char>('a' + (i % 23));
  }
  return payload;
}

std::string drain_exactly(const Socket& socket, std::size_t total) {
  std::string received;
  received.reserve(total);
  char buf[137];  // odd-sized reads shear the sender's write boundaries
  while (received.size() < total) {
    const std::size_t n = socket.read_some(buf, sizeof buf);
    if (n == 0) break;
    received.append(buf, n);
  }
  return received;
}

TEST(SocketIo, PartialWritesReassembleThroughTinyBuffers) {
  TinyBufferPair pair;
  const std::string payload = patterned_payload(512 * 1024);
  std::thread writer([&] { pair.a.write_all(payload); });
  const std::string received = drain_exactly(pair.b, payload.size());
  writer.join();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);  // short writes never reorder or drop bytes
}

TEST(SocketIo, WriteAllForCompletesWhenReaderKeepsUp) {
  TinyBufferPair pair;
  const std::string payload = patterned_payload(256 * 1024);
  bool completed = false;
  std::thread writer([&] { completed = pair.a.write_all_for(payload, 5000); });
  const std::string received = drain_exactly(pair.b, payload.size());
  writer.join();
  EXPECT_TRUE(completed);
  EXPECT_EQ(received, payload);
}

TEST(SocketIo, WriteAllForTimesOutAgainstStalledReader) {
  TinyBufferPair pair;
  // Nobody reads: the tiny buffers fill within a few KiB and the writer
  // must give up at the timeout instead of blocking forever.
  const std::string payload = patterned_payload(512 * 1024);
  EXPECT_FALSE(pair.a.write_all_for(payload, 50));
  // The sent prefix is still intact on the peer side (no corruption).
  char buf[256];
  const std::size_t n = pair.b.read_some(buf, sizeof buf);
  ASSERT_GT(n, 0u);
  EXPECT_EQ(std::string(buf, n), payload.substr(0, n));
}

TEST(SocketIo, WriteAllForZeroTimeoutDegradesToBlockingWrite) {
  TinyBufferPair pair;
  const std::string payload = patterned_payload(128 * 1024);
  bool completed = false;
  std::thread writer([&] { completed = pair.a.write_all_for(payload, 0); });
  const std::string received = drain_exactly(pair.b, payload.size());
  writer.join();
  EXPECT_TRUE(completed);
  EXPECT_EQ(received, payload);
}

TEST(SocketIo, ReadAndWriteSurviveEintrStorm) {
  // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART makes every
  // delivery interrupt a blocking syscall with EINTR; the wrappers must
  // retry transparently.
  struct sigaction action {};
  action.sa_handler = [](int) {};
  action.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  TinyBufferPair pair;
  const std::string payload = patterned_payload(512 * 1024);
  std::atomic<bool> writing{true};
  std::thread writer([&] {
    pair.a.write_all(payload);
    writing.store(false);
  });
  const pthread_t writer_handle = writer.native_handle();

  std::string received;
  received.reserve(payload.size());
  char buf[211];
  while (received.size() < payload.size()) {
    // Pelt the writer (blocked in send on a full buffer) between reads.
    if (writing.load()) ::pthread_kill(writer_handle, SIGUSR1);
    const std::size_t n = pair.b.read_some(buf, sizeof buf);
    ASSERT_GT(n, 0u);
    received.append(buf, n);
  }
  writer.join();
  ::sigaction(SIGUSR1, &previous, nullptr);
  EXPECT_EQ(received, payload);
}

TEST(SocketIo, ShutdownBothWakesPeerWithEof) {
  TinyBufferPair pair;
  pair.a.write_all("last words");
  pair.a.shutdown_both();
  char buf[64];
  const std::size_t n = pair.b.read_some(buf, sizeof buf);
  EXPECT_EQ(std::string(buf, n), "last words");  // sent bytes still arrive
  EXPECT_EQ(pair.b.read_some(buf, sizeof buf), 0u) << "then orderly EOF";
}

}  // namespace
}  // namespace mts::net
