#include "net/framing.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"

namespace mts::net {
namespace {

TEST(LineFramer, SplitsPipelinedBurstIntoLines) {
  LineFramer framer;
  framer.feed("ping 1\ngraph 2\nroute 3 0 5\n");
  std::string line;
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "ping 1");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "graph 2");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "route 3 0 5");
  EXPECT_FALSE(framer.next_line(line));
  EXPECT_EQ(framer.partial_bytes(), 0u);
}

TEST(LineFramer, ReassemblesTornLinesAcrossFeeds) {
  LineFramer framer;
  std::string line;
  framer.feed("rou");
  EXPECT_FALSE(framer.next_line(line));
  EXPECT_EQ(framer.partial_bytes(), 3u);
  framer.feed("te 7 1");
  EXPECT_FALSE(framer.next_line(line));
  framer.feed("2 34\npi");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "route 7 12 34");
  EXPECT_FALSE(framer.next_line(line));
  framer.feed("ng 8\n");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "ping 8");
}

TEST(LineFramer, SingleByteFeedsWork) {
  LineFramer framer;
  std::string line;
  const std::string wire = "kalt 9 3 4 2\n";
  for (const char c : wire) framer.feed(std::string_view(&c, 1));
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "kalt 9 3 4 2");
}

TEST(LineFramer, StripsCarriageReturn) {
  LineFramer framer;
  std::string line;
  framer.feed("ping 1\r\nping 2\n");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "ping 1");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "ping 2");
}

TEST(LineFramer, PassesThroughBinaryBytes) {
  // The framer treats content as opaque: invalid UTF-8 and NULs survive
  // until the protocol parser rejects them.
  LineFramer framer;
  std::string line;
  const std::string hostile = std::string("a\xff\xfe") + '\0' + "b\n";
  framer.feed(hostile);
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, hostile.substr(0, hostile.size() - 1));
}

TEST(LineFramer, EmptyLinesAreDelivered) {
  LineFramer framer;
  std::string line;
  framer.feed("\n\nping 1\n");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "ping 1");
}

TEST(LineFramer, OversizedTerminatedLineThrowsButStreamRecovers) {
  LineFramer framer(16);
  std::string line;
  framer.feed(std::string(40, 'x') + "\nping 1\n");
  EXPECT_THROW(framer.next_line(line), InvalidInput);
  // The oversized line was discarded; the stream stays parsable.
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "ping 1");
}

TEST(LineFramer, UnterminatedOversizedTailThrowsOnFeed) {
  LineFramer framer(16);
  framer.feed(std::string(16, 'x'));  // at the cap: still fine
  EXPECT_THROW(framer.feed(std::string(16, 'y')), InvalidInput);
}

TEST(LineFramer, MaximalLineSplitExactlyAtTheCapBoundary) {
  // A response of exactly kMaxLineBytes whose terminator arrives in the
  // next read: the tail sits at the cap (legal) until the '\n' lands.
  LineFramer framer;
  std::string line;
  const std::string maximal(kMaxLineBytes, 'r');
  framer.feed(maximal);
  EXPECT_FALSE(framer.next_line(line));
  EXPECT_EQ(framer.partial_bytes(), kMaxLineBytes);
  framer.feed("\nping 1\n");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, maximal);
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "ping 1");  // the stream stays parsable after the giant
}

TEST(LineFramer, CompactionKeepsTornTailIntact) {
  // Force many consumed lines before a torn tail so the lazy compaction
  // path runs, then verify the tail completes correctly.
  LineFramer framer;
  std::string line;
  for (int i = 0; i < 100; ++i) {
    framer.feed("ping " + std::to_string(i) + "\n");
    ASSERT_TRUE(framer.next_line(line));
    EXPECT_EQ(line, "ping " + std::to_string(i));
  }
  framer.feed("tail");
  framer.feed(" end\n");
  ASSERT_TRUE(framer.next_line(line));
  EXPECT_EQ(line, "tail end");
}

}  // namespace
}  // namespace mts::net
