// CH serving parity and shared-snapshot concurrency.
//
// ChServing: a QueryEngine over a CH-backed snapshot must produce
// byte-identical wire responses to one over a Dijkstra-only snapshot
// (MTS_CH=0) — the in-process twin of ci.sh's routed_ch_parity A/B
// replay.  ChSharedSnapshot: many engines on many threads share one
// const Snapshot (and therefore one ContractionHierarchy); under TSan
// this is the data-race gate for the read-only sharing contract
// (ci.sh tsan leg).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "citygen/generate.hpp"
#include "graph/dijkstra.hpp"
#include "net/engine.hpp"
#include "net/protocol.hpp"
#include "net/snapshot.hpp"

namespace mts::net {
namespace {

/// Builds a snapshot of the same small city with MTS_CH forced on or off
/// for the duration of the build (ch_enabled() is read at Snapshot
/// construction, not per query).
Snapshot build_snapshot(bool with_ch) {
  ::setenv("MTS_CH", with_ch ? "1" : "0", 1);
  Snapshot snapshot(citygen::generate_city(citygen::City::Chicago, 0.15, 5));
  ::unsetenv("MTS_CH");
  return snapshot;
}

const Snapshot& ch_snapshot() {
  static const Snapshot snapshot = build_snapshot(true);
  return snapshot;
}

const Snapshot& dijkstra_snapshot() {
  static const Snapshot snapshot = build_snapshot(false);
  return snapshot;
}

/// A deterministic request matrix covering every CH-served verb, both
/// weight kinds, and (via fixed node picks) reachable pairs.
std::vector<Request> parity_requests(std::size_t num_nodes) {
  std::vector<Request> requests;
  std::uint64_t id = 1;
  const auto node = [num_nodes](std::uint64_t i) {
    return static_cast<std::uint32_t>((i * 2654435761ULL) % num_nodes);
  };
  for (const WeightKind weight : {WeightKind::Time, WeightKind::Length}) {
    for (std::uint64_t i = 0; i < 12; ++i) {
      Request request;
      request.id = id++;
      request.weight = weight;
      request.source = node(3 * i + 1);
      request.target = node(5 * i + 2);
      if (request.source == request.target) request.target = (request.target + 1) % num_nodes;
      switch (i % 4) {
        case 0:
          request.verb = Verb::Route;
          break;
        case 1:
          request.verb = Verb::Kalt;
          request.k = 3;
          break;
        case 2:
          request.verb = Verb::Table;
          request.sources = {request.source, node(7 * i + 3), node(11 * i + 4)};
          request.targets = {request.target, node(13 * i + 5)};
          break;
        case 3:
          request.verb = Verb::Attack;
          request.rank = 2;
          request.algorithm = attack::Algorithm::GreedyPathCover;
          break;
      }
      requests.push_back(request);
    }
  }
  return requests;
}

std::vector<std::string> answer_all(const Snapshot& snapshot,
                                    const std::vector<Request>& requests) {
  QueryEngine engine(snapshot, WorkBudget{});
  std::vector<std::string> lines;
  lines.reserve(requests.size());
  for (const Request& request : requests) {
    lines.push_back(serialize_response(engine.handle(request)));
  }
  return lines;
}

TEST(ChServing, SnapshotBuildsChBundlesOnlyWhenEnabled) {
  EXPECT_NE(ch_snapshot().ch(true), nullptr);
  EXPECT_NE(ch_snapshot().ch(false), nullptr);
  EXPECT_EQ(dijkstra_snapshot().ch(true), nullptr);
  EXPECT_EQ(dijkstra_snapshot().ch(false), nullptr);
}

TEST(ChServing, ResponsesByteIdenticalToDijkstraServing) {
  const auto requests = parity_requests(ch_snapshot().num_nodes());
  const auto ch_lines = answer_all(ch_snapshot(), requests);
  const auto dijkstra_lines = answer_all(dijkstra_snapshot(), requests);
  ASSERT_EQ(ch_lines.size(), dijkstra_lines.size());
  for (std::size_t i = 0; i < ch_lines.size(); ++i) {
    EXPECT_EQ(ch_lines[i], dijkstra_lines[i])
        << "request " << serialize_request(requests[i]);
  }
}

TEST(ChServing, TableMatchesDirectDijkstra) {
  Request request;
  request.verb = Verb::Table;
  request.id = 7;
  request.weight = WeightKind::Time;
  request.sources = {1, 9, 33};
  request.targets = {70, 4};
  QueryEngine engine(ch_snapshot(), WorkBudget{});
  const Response response = engine.handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.field("rows"), "3");
  EXPECT_EQ(response.field("cols"), "2");

  const auto& g = ch_snapshot().graph();
  const auto& weights = ch_snapshot().weights(true);
  const std::string vals = response.field("vals");
  std::vector<std::string> got;
  std::size_t pos = 0;
  while (pos <= vals.size()) {
    const std::size_t comma = vals.find(',', pos);
    got.push_back(vals.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  ASSERT_EQ(got.size(), 6u);
  // Compare in wire precision (%.9g): bucket sums associate additions
  // differently from a sequential path walk, so full-double equality is
  // not the contract — 9 significant digits on the wire is.
  std::size_t cell = 0;
  for (const std::uint32_t s : request.sources) {
    for (const std::uint32_t t : request.targets) {
      const double expected = shortest_distance(g, weights, NodeId(s), NodeId(t));
      EXPECT_EQ(got[cell], format_wire_double(expected)) << "cell " << cell;
      ++cell;
    }
  }
}

TEST(ChServing, TableRejectsOutOfRangeNodes) {
  Request request;
  request.verb = Verb::Table;
  request.id = 8;
  request.sources = {0};
  request.targets = {static_cast<std::uint32_t>(ch_snapshot().num_nodes())};
  QueryEngine engine(ch_snapshot(), WorkBudget{});
  const Response response = engine.handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("invalid-input"), std::string::npos) << response.error;
}

TEST(ChSharedSnapshot, ConcurrentEnginesProduceIdenticalAnswers) {
  const auto requests = parity_requests(ch_snapshot().num_nodes());
  const auto baseline = answer_all(ch_snapshot(), requests);

  constexpr int kThreads = 4;
  std::vector<std::vector<std::string>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&requests, &results, i] {
      results[i] = answer_all(ch_snapshot(), requests);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(results[i], baseline) << "thread " << i;
  }
}

}  // namespace
}  // namespace mts::net
