// End-to-end tests for the routed daemon: a real RoutedServer on an
// ephemeral loopback port, exercised by raw protocol clients and by
// run_loadgen.  The snapshot is built once per process from a small
// generated city.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "core/fault.hpp"
#include "obs/metrics.hpp"
#include "net/framing.hpp"
#include "net/loadgen.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"

namespace mts::net {
namespace {

const Snapshot& test_snapshot() {
  static const Snapshot snapshot(citygen::generate_city(citygen::City::Chicago, 0.15, 5));
  return snapshot;
}

/// A RoutedServer with serve() running on a background thread; the
/// destructor drains it.  Each test builds its own so option changes
/// (budgets) and stats stay isolated.
class ServerHarness {
 public:
  explicit ServerHarness(RoutedOptions options = {})
      : server_(test_snapshot(), [&] {
          options.threads = 2;
          return options;
        }()) {
    server_.start();
    serve_thread_ = std::thread([this] { server_.serve(); });
  }

  ~ServerHarness() {
    server_.request_stop();
    serve_thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] RoutedStats stats() const { return server_.stats(); }

 private:
  RoutedServer server_;
  std::thread serve_thread_;
};

/// Minimal blocking client: sends request lines, reads response lines.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) : socket_(connect_to("127.0.0.1", port)) {}

  void send_line(const std::string& line) { socket_.write_all(line + "\n"); }

  Response read_response() {
    std::string line;
    while (!framer_.next_line(line)) {
      char buf[512];
      const std::size_t n = socket_.read_some(buf, sizeof buf);
      require(n > 0, "daemon closed the connection while a response was expected");
      framer_.feed(std::string_view(buf, n));
    }
    return parse_response(line);
  }

 private:
  Socket socket_;
  LineFramer framer_;
};

TEST(RoutedE2e, AnswersEveryVerb) {
  ServerHarness harness;
  TestClient client(harness.port());

  client.send_line("ping 1");
  Response pong = client.read_response();
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.id, 1u);
  EXPECT_EQ(pong.verb, "pong");

  client.send_line("graph 2");
  Response graph = client.read_response();
  ASSERT_TRUE(graph.ok);
  EXPECT_EQ(graph.field("nodes"), std::to_string(test_snapshot().num_nodes()));
  EXPECT_EQ(graph.field("edges"), std::to_string(test_snapshot().num_edges()));

  client.send_line("route 3 0 1");
  Response route = client.read_response();
  ASSERT_TRUE(route.ok);
  EXPECT_EQ(route.verb, "route");
  EXPECT_FALSE(route.field("found").empty());
  EXPECT_FALSE(route.field("dist").empty());

  client.send_line("kalt 4 0 1 4");
  Response kalt = client.read_response();
  ASSERT_TRUE(kalt.ok);
  EXPECT_FALSE(kalt.field("paths").empty());

  client.send_line("attack 5 0 1 2 greedy-pathcover");
  Response atk = client.read_response();
  ASSERT_TRUE(atk.ok);
  EXPECT_FALSE(atk.field("status").empty());
}

TEST(RoutedE2e, PipelinedRequestsAllAnswered) {
  ServerHarness harness;
  TestClient client(harness.port());
  // One write syscall carrying many requests; responses may arrive in any
  // order but every id must be answered exactly once.
  std::string burst;
  for (int i = 1; i <= 32; ++i) {
    burst += "route " + std::to_string(i) + " " + std::to_string(i % 10) + " " +
             std::to_string(10 + i % 10) + "\n";
  }
  client.send_line(burst.substr(0, burst.size() - 1));
  std::vector<bool> answered(33, false);
  for (int i = 0; i < 32; ++i) {
    const Response response = client.read_response();
    EXPECT_TRUE(response.ok) << response.error;
    ASSERT_GE(response.id, 1u);
    ASSERT_LE(response.id, 32u);
    EXPECT_FALSE(answered[response.id]) << "duplicate response id " << response.id;
    answered[response.id] = true;
  }
}

TEST(RoutedE2e, MalformedRequestGetsErrAndConnectionSurvives) {
  ServerHarness harness;
  TestClient client(harness.port());
  client.send_line("teleport 9 1 2");
  Response err = client.read_response();
  EXPECT_FALSE(err.ok);
  EXPECT_NE(err.error.find("invalid-input"), std::string::npos) << err.error;
  EXPECT_NE(err.error.find("teleport"), std::string::npos) << err.error;
  // The connection is still serviceable after a parse error.
  client.send_line("ping 10");
  Response pong = client.read_response();
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.id, 10u);
  EXPECT_GE(harness.stats().protocol_errors, 1u);
}

TEST(RoutedE2e, OutOfRangeNodeIsRejectedWithTaxonomy) {
  ServerHarness harness;
  TestClient client(harness.port());
  const std::string big = std::to_string(test_snapshot().num_nodes() + 100);
  client.send_line("route 1 0 " + big);
  Response err = client.read_response();
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.id, 1u);
  EXPECT_NE(err.error.find("invalid-input"), std::string::npos) << err.error;
  EXPECT_NE(err.error.find(big), std::string::npos) << err.error;
}

TEST(RoutedE2e, ExhaustedBudgetSurfacesAsStructuredError) {
  RoutedOptions options;
  options.request_budget.max_edges_scanned = 1;  // any real search exceeds this
  ServerHarness harness(options);
  TestClient client(harness.port());
  client.send_line("route 1 0 " + std::to_string(test_snapshot().num_nodes() - 1));
  Response err = client.read_response();
  EXPECT_FALSE(err.ok);
  EXPECT_NE(err.error.find("budget-exhausted"), std::string::npos) << err.error;
  // The worker survived the exhaustion: the next request is answered.
  client.send_line("ping 2");
  EXPECT_TRUE(client.read_response().ok);
}

TEST(RoutedE2e, ArmedFaultPointProducesFaultInjectedError) {
  ServerHarness harness;
  TestClient client(harness.port());
  fault::FaultRegistry::instance().arm("routed.request", 1, fault::Action::Throw);
  client.send_line("ping 1");
  Response err = client.read_response();
  fault::FaultRegistry::instance().reset();
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.id, 1u);
  EXPECT_NE(err.error.find("fault-injected"), std::string::npos) << err.error;
  // The fault fires exactly once; the daemon keeps serving afterwards.
  client.send_line("ping 2");
  EXPECT_TRUE(client.read_response().ok);
}

TEST(RoutedE2e, StatsVerbReportsServerWindowAndRegistryViews) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::instance().reset();
  {
    ServerHarness harness;
    TestClient client(harness.port());
    for (int i = 1; i <= 8; ++i) {
      client.send_line("route " + std::to_string(i) + " 0 1");
      EXPECT_TRUE(client.read_response().ok);
    }
    client.send_line("stats 100");
    const Response stats = client.read_response();
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(stats.id, 100u);
    EXPECT_EQ(stats.verb, "stats");
    // Keys are globally sorted: the wire-determinism promise.
    for (std::size_t i = 1; i < stats.fields.size(); ++i) {
      EXPECT_LT(stats.fields[i - 1].first, stats.fields[i].first);
    }
    // server.* totals include the stats request itself (served inline by
    // the reader thread); bookkeeping lands before each response is
    // written, so all eight routes are already counted everywhere.
    EXPECT_EQ(stats.field("server.requests"), "9");
    EXPECT_EQ(stats.field("server.responses_ok"), "9");
    EXPECT_EQ(stats.field("server.responses_error"), "0");
    EXPECT_EQ(stats.field("window.count"), "8");
    EXPECT_EQ(stats.field("window.seconds"), "60");
    // The registry slice agrees with the server's own counters mid-run...
    EXPECT_EQ(stats.field("routed.requests"), "9");
    EXPECT_EQ(stats.field("routed.responses_ok"), "9");
    EXPECT_EQ(stats.field("routed.request_latency_s.count"), "8");
    EXPECT_FALSE(stats.field("routed.request_latency_s.p99").empty());
  }
  // ...and the post-run registry snapshot matches what the mid-run stats
  // response reported (the metrics JSON is written from this snapshot).
  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "routed.requests") {
      EXPECT_EQ(counter.value, 9u);
    }
    if (counter.name == "routed.responses_ok") {
      EXPECT_EQ(counter.value, 9u);
    }
    if (counter.name == "routed.responses_error") {
      EXPECT_EQ(counter.value, 0u);
    }
  }
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(false);
}

TEST(RoutedE2e, StatsWithoutMetricsStillServesAlwaysOnViews) {
  // Knobs off: the registry slice reads zero, but server.* and window.*
  // are always-on (plain atomics and the ring, no obs gating).
  ServerHarness harness;
  TestClient client(harness.port());
  client.send_line("route 1 0 1");
  EXPECT_TRUE(client.read_response().ok);
  client.send_line("stats 2");
  const Response stats = client.read_response();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.field("server.requests"), "2");
  EXPECT_EQ(stats.field("window.count"), "1");
}

TEST(RoutedE2e, ArmedFaultWritesExactlyOneSlowlogLine) {
  const std::string path = ::testing::TempDir() + "routed_e2e_slowlog.jsonl";
  std::remove(path.c_str());
  RoutedOptions options;
  options.slowlog_threshold_s = 60.0;  // no healthy request takes a minute
  options.slowlog_path = path;
  {
    ServerHarness harness(options);
    TestClient client(harness.port());
    fault::FaultRegistry::instance().arm("routed.request", 1, fault::Action::Throw);
    client.send_line("route 7 0 1");
    const Response err = client.read_response();
    fault::FaultRegistry::instance().reset();
    EXPECT_FALSE(err.ok);
    // A healthy request under the threshold must NOT be logged.
    client.send_line("route 8 0 1");
    EXPECT_TRUE(client.read_response().ok);
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u) << "slowlog must hold exactly the failed request";
  EXPECT_NE(lines[0].find("\"verb\":\"route\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"id\":7"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("fault-injected"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"edges_scanned\":"), std::string::npos) << lines[0];
  std::remove(path.c_str());
}

TEST(RoutedE2e, RequestSpansCarryWorkCounters) {
  obs::set_trace_enabled(true);
  obs::MetricsRegistry::instance().reset();
  {
    ServerHarness harness;
    TestClient client(harness.port());
    client.send_line("kalt 5 0 1 3");
    EXPECT_TRUE(client.read_response().ok);
  }
  const auto events = obs::MetricsRegistry::instance().trace_events();
  const obs::TraceEvent* span = nullptr;
  for (const auto& event : events) {
    if (event.cat == "mts.request") span = &event;
  }
  ASSERT_NE(span, nullptr) << "request span missing from the trace buffer";
  EXPECT_EQ(span->name, "kalt");
  bool saw_edges = false;
  for (const auto& [key, value] : span->args) {
    if (key == "edges_scanned") {
      saw_edges = true;
      EXPECT_NE(value, "0");  // a real Yen run scans edges
    }
  }
  EXPECT_TRUE(saw_edges);
  obs::MetricsRegistry::instance().reset();
  obs::set_trace_enabled(false);
  obs::set_metrics_enabled(false);
}

TEST(RoutedE2e, RequestOnceRoundTripsAndWindowStaysSane) {
  ServerHarness harness;
  LoadgenOptions options;
  options.requests = 60;
  options.connections = 2;
  const LoadReport report = run_loadgen("127.0.0.1", harness.port(), options);
  EXPECT_EQ(report.dropped, 0u);
  Request stats_request;
  stats_request.verb = Verb::Stats;
  stats_request.id = 1000;
  const Response stats = request_once("127.0.0.1", harness.port(), stats_request);
  ASSERT_TRUE(stats.ok);
  // 60 replayed routes plus loadgen's own `graph` size probe; the inline
  // stats request itself never touches the window.
  EXPECT_EQ(stats.field("window.count"), "61");
  // Windowed percentiles are within a log bucket of the true latency
  // distribution, so p99 can never undercut p50 or exceed the max bound.
  const double p50 = std::stod(stats.field("window.p50_s"));
  const double p99 = std::stod(stats.field("window.p99_s"));
  EXPECT_GE(p99, p50);
  EXPECT_GE(p50, 0.0);
}

TEST(RoutedE2e, LoadgenCompletesWithZeroDrops) {
  ServerHarness harness;
  LoadgenOptions options;
  options.requests = 400;
  options.connections = 3;
  options.window = 8;
  options.mix = Mix::Mixed;
  options.attack_rank = 2;
  const LoadReport report = run_loadgen("127.0.0.1", harness.port(), options);
  EXPECT_EQ(report.sent, 400u);
  EXPECT_EQ(report.completed, 400u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.failed_connections, 0u);
  EXPECT_EQ(report.ok + report.errors, 400u);
  // A synthetic stream over a connected city should mostly succeed.
  EXPECT_GT(report.ok, 0u);
  const RoutedStats stats = harness.stats();
  EXPECT_GE(stats.requests, 400u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(RoutedE2e, DrainAnswersEveryParsedRequest) {
  RoutedServer server(test_snapshot(), [] {
    RoutedOptions options;
    options.threads = 2;
    return options;
  }());
  server.start();
  std::thread serve_thread([&server] { server.serve(); });

  TestClient client(server.port());
  // Park a burst, then stop the server before reading anything: the drain
  // contract says every parsed request is still answered.
  std::string burst;
  for (int i = 1; i <= 16; ++i) burst += "route " + std::to_string(i) + " 0 1\n";
  client.send_line(burst.substr(0, burst.size() - 1));
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(client.read_response().ok);
  }
  server.request_stop();
  serve_thread.join();
  const RoutedStats stats = server.stats();
  EXPECT_EQ(stats.requests, 16u);
  EXPECT_EQ(stats.responses_ok, 16u);
  // After the drain, new connections are refused (listener closed) --
  // connect either fails outright or is reset on first use.
  EXPECT_THROW(
      {
        Socket late = connect_to("127.0.0.1", server.port());
        late.write_all("ping 99\n");
        char buf[64];
        require(late.read_some(buf, sizeof buf) > 0, "connection refused or reset");
      },
      Error);
}

TEST(RoutedE2e, ExternalStopFlagStopsServe) {
  RoutedServer server(test_snapshot(), [] {
    RoutedOptions options;
    options.threads = 1;
    return options;
  }());
  server.start();
  std::atomic<bool> stop{false};
  std::thread serve_thread([&] { server.serve(&stop); });
  TestClient client(server.port());
  client.send_line("ping 1");
  EXPECT_TRUE(client.read_response().ok);
  stop.store(true);
  serve_thread.join();
  EXPECT_EQ(server.stats().responses_ok, 1u);
}

}  // namespace
}  // namespace mts::net
