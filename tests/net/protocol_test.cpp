#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/error.hpp"

namespace mts::net {
namespace {

TEST(Protocol, ParsesEveryVerb) {
  Request ping = parse_request("ping 1");
  EXPECT_EQ(ping.verb, Verb::Ping);
  EXPECT_EQ(ping.id, 1u);

  Request graph = parse_request("graph 2");
  EXPECT_EQ(graph.verb, Verb::Graph);

  Request stats = parse_request("stats 6");
  EXPECT_EQ(stats.verb, Verb::Stats);
  EXPECT_EQ(stats.id, 6u);

  Request route = parse_request("route 3 10 20");
  EXPECT_EQ(route.verb, Verb::Route);
  EXPECT_EQ(route.source, 10u);
  EXPECT_EQ(route.target, 20u);
  EXPECT_EQ(route.weight, WeightKind::Time);

  Request kalt = parse_request("kalt 4 10 20 8 length");
  EXPECT_EQ(kalt.verb, Verb::Kalt);
  EXPECT_EQ(kalt.k, 8u);
  EXPECT_EQ(kalt.weight, WeightKind::Length);

  Request atk = parse_request("attack 5 10 20 16 greedy-pathcover");
  EXPECT_EQ(atk.verb, Verb::Attack);
  EXPECT_EQ(atk.rank, 16u);
  EXPECT_EQ(atk.algorithm, attack::Algorithm::GreedyPathCover);
}

TEST(Protocol, RequestRoundTripsForEveryVerbAndVariant) {
  std::vector<Request> cases;
  {
    Request r;
    r.verb = Verb::Ping;
    r.id = 1;
    cases.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::Graph;
    r.id = 99;
    cases.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::Stats;
    r.id = 31337;
    cases.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::Route;
    r.id = 7;
    r.source = 12;
    r.target = 34;
    r.weight = WeightKind::Length;
    cases.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::Kalt;
    r.id = 1234567890123ULL;
    r.source = 0;
    r.target = 4294967295u;
    r.k = kMaxAlternatives;
    cases.push_back(r);
  }
  for (const auto algorithm :
       {attack::Algorithm::LpPathCover, attack::Algorithm::GreedyPathCover,
        attack::Algorithm::GreedyEdge, attack::Algorithm::GreedyEig}) {
    Request r;
    r.verb = Verb::Attack;
    r.id = 8;
    r.source = 3;
    r.target = 9;
    r.rank = kMaxPathRank;
    r.algorithm = algorithm;
    r.weight = WeightKind::Length;
    cases.push_back(r);
  }
  for (const Request& request : cases) {
    const std::string wire = serialize_request(request);
    EXPECT_EQ(parse_request(wire), request) << wire;
    // The optional deadline token composes with every variant.
    Request with_deadline = request;
    with_deadline.deadline_ms = 2500;
    const std::string deadline_wire = serialize_request(with_deadline);
    EXPECT_EQ(parse_request(deadline_wire), with_deadline) << deadline_wire;
  }
}

TEST(Protocol, DeadlineTokenParsesWithAndWithoutWeight) {
  const Request bare = parse_request("route 7 1 2 deadline=250");
  EXPECT_EQ(bare.deadline_ms, 250u);
  EXPECT_EQ(bare.weight, WeightKind::Time);  // weight slot untouched
  const Request both = parse_request("route 7 1 2 length deadline=250");
  EXPECT_EQ(both.deadline_ms, 250u);
  EXPECT_EQ(both.weight, WeightKind::Length);
  const Request none = parse_request("route 7 1 2");
  EXPECT_EQ(none.deadline_ms, 0u);
  // The cap is inclusive (one hour).
  EXPECT_EQ(parse_request("ping 1 deadline=3600000").deadline_ms, 3'600'000u);
}

TEST(Protocol, DeadlineTokenRejectsBadValues) {
  const char* hostile[] = {
      "route 1 2 3 deadline=0",          // a zero deadline is meaningless
      "route 1 2 3 deadline=",           // empty value
      "route 1 2 3 deadline=soon",       // non-numeric
      "route 1 2 3 deadline=-5",         // negative
      "route 1 2 3 deadline=3600001",    // beyond the one-hour cap
      "route 1 2 3 deadline=250 time",   // deadline must come last
      "ping 1 deadline=10 deadline=10",  // at most one deadline token
  };
  for (const char* line : hostile) {
    EXPECT_THROW(parse_request(line), InvalidInput) << "accepted: '" << line << "'";
  }
}

TEST(Protocol, RejectsMalformedRequests) {
  const char* hostile[] = {
      "",                                    // empty line
      " ",                                   // blank token
      "ping",                                // missing id
      "ping x",                              // non-numeric id
      "ping -1",                             // negative id
      "ping 1 2",                            // trailing junk
      "ping 99999999999999999999",           // id overflows uint64
      "route 1 2",                           // missing dst
      "route 1 2 3 4",                       // junk after optional weight slot
      "route 1 2 3 speed",                   // unknown weight
      "route 1 4294967296 3",                // src overflows uint32
      "route  1 2 3",                        // double space -> empty token
      "kalt 1 2 3 0",                        // k must be >= 1
      "kalt 1 2 3 65",                       // k beyond kMaxAlternatives
      "kalt 1 2 3",                          // missing k
      "attack 1 2 3 0 greedy-pathcover",     // rank must be >= 1
      "attack 1 2 3 513 greedy-pathcover",   // rank beyond kMaxPathRank
      "attack 1 2 3 4 dijkstra",             // unknown algorithm
      "attack 1 2 3 4",                      // missing algorithm
      "stats",                               // missing id
      "stats 1 2",                           // trailing junk
      "teleport 1 2 3",                      // unknown verb
      "route 1 2 3 time length",             // junk after weight
      "ROUTE 1 2 3",                         // verbs are case-sensitive
  };
  for (const char* line : hostile) {
    EXPECT_THROW(parse_request(line), InvalidInput) << "accepted: '" << line << "'";
  }
}

TEST(Protocol, RejectionNamesTheOffendingToken) {
  try {
    parse_request("attack 1 2 3 4 dijkstra");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("dijkstra"), std::string::npos) << e.what();
  }
  try {
    parse_request("teleport 1");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("teleport"), std::string::npos) << e.what();
  }
}

TEST(Protocol, OkResponseRoundTrips) {
  Response response;
  response.id = 42;
  response.ok = true;
  response.verb = "route";
  response.fields = {{"found", "1"}, {"dist", "12.5"}, {"hops", "3"}};
  const std::string wire = serialize_response(response);
  EXPECT_EQ(wire, "ok 42 route found=1 dist=12.5 hops=3");
  const Response parsed = parse_response(wire);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.verb, "route");
  EXPECT_EQ(parsed.field("dist"), "12.5");
  EXPECT_EQ(parsed.field("missing"), "");
}

TEST(Protocol, ErrResponseCarriesTaxonomyMessage) {
  Response response;
  response.id = 7;
  response.ok = false;
  response.error = "invalid-input: node 999 out of range";
  const std::string wire = serialize_response(response);
  EXPECT_EQ(wire, "err 7 invalid-input: node 999 out of range");
  const Response parsed = parse_response(wire);
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.id, 7u);
  EXPECT_EQ(parsed.error, "invalid-input: node 999 out of range");
}

TEST(Protocol, ErrSerializationFlattensNewlines) {
  Response response;
  response.id = 1;
  response.ok = false;
  response.error = "error: first\nsecond\rthird";
  const std::string wire = serialize_response(response);
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  EXPECT_EQ(wire.find('\r'), std::string::npos);
}

TEST(Protocol, RejectsMalformedResponses) {
  const char* hostile[] = {
      "",
      "ok",
      "yes 1 pong",       // unknown status token
      "ok x pong",        // non-numeric id
      "ok 1",             // missing verb
      "ok 1 route =5",    // empty field key
      "ok 1 route dist",  // field without '='
      "err 1",            // err without message
  };
  for (const char* line : hostile) {
    EXPECT_THROW(parse_response(line), InvalidInput) << "accepted: '" << line << "'";
  }
}

TEST(Protocol, FormatWireDoubleMatchesJsonReports) {
  EXPECT_EQ(format_wire_double(0.0), "0");
  EXPECT_EQ(format_wire_double(12.5), "12.5");
  EXPECT_EQ(format_wire_double(1.0 / 3.0), "0.333333333");
}

}  // namespace
}  // namespace mts::net
