// Overload-protection tests for the routed daemon (DESIGN.md §15): the
// admission policy as a pure function, shed/deadline/eviction end to end
// against a real server, the slow-client regression (a stalled writer must
// never block unrelated requests), and the overload-aware loadgen client
// (retries and reconnects).  Time-dependent tests are arranged so the
// asserted ordering follows from synchronization points (a pipelined burst
// parsed while a known-slow request occupies the only worker; an observed
// EOF proving an eviction happened), not from sleeps racing the server.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "core/fault.hpp"
#include "core/timer.hpp"
#include "net/framing.hpp"
#include "net/loadgen.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"

namespace mts::net {
namespace {

const Snapshot& test_snapshot() {
  static const Snapshot snapshot(citygen::generate_city(citygen::City::Chicago, 0.15, 5));
  return snapshot;
}

/// A RoutedServer with serve() on a background thread, taking the caller's
/// options verbatim (unlike the e2e harness, overload tests often need
/// exactly one worker so a slow request deterministically parks the queue).
class OverloadHarness {
 public:
  explicit OverloadHarness(RoutedOptions options) : server_(test_snapshot(), options) {
    server_.start();
    serve_thread_ = std::thread([this] { server_.serve(); });
  }

  ~OverloadHarness() {
    server_.request_stop();
    serve_thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] RoutedStats stats() const { return server_.stats(); }

 private:
  RoutedServer server_;
  std::thread serve_thread_;
};

class TestClient {
 public:
  explicit TestClient(std::uint16_t port) : socket_(connect_to("127.0.0.1", port)) {}

  void send_line(const std::string& line) { socket_.write_all(line + "\n"); }

  Response read_response() {
    std::string line;
    while (!framer_.next_line(line)) {
      char buf[512];
      const std::size_t n = socket_.read_some(buf, sizeof buf);
      require(n > 0, "daemon closed the connection while a response was expected");
      framer_.feed(std::string_view(buf, n));
    }
    return parse_response(line);
  }

  /// Reads until the daemon closes the connection; returns the number of
  /// complete response lines seen before EOF.
  std::size_t read_until_eof() {
    std::size_t lines = 0;
    std::string line;
    for (;;) {
      while (framer_.next_line(line)) ++lines;
      char buf[512];
      std::size_t n = 0;
      try {
        n = socket_.read_some(buf, sizeof buf);
      } catch (const Error&) {
        return lines;  // RST from an evicted connection counts as EOF here
      }
      if (n == 0) return lines;
      framer_.feed(std::string_view(buf, n));
    }
  }

 private:
  Socket socket_;
  LineFramer framer_;
};

/// Parks the next request's worker for fault::kStallMillis: the
/// `routed.request` value site sleeps on Stall and then serves the request
/// normally.  Unlike a "slow" query (whose duration depends on the graph
/// and the machine), this holds the worker for a known, generous interval,
/// so anything pipelined behind it on a one-worker server is parsed and
/// queued/shed/expired while the worker is provably still busy.
void stall_next_request() {
  fault::FaultRegistry::instance().arm("routed.request", 1, fault::Action::Stall);
}

TEST(RoutedOverload, ShouldShedPolicy) {
  // No cap: nothing ever sheds.
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Attack, 1000000, 0));
  // Control verbs always pass the policy regardless of depth.
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Ping, 100, 4));
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Graph, 100, 4));
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Stats, 100, 4));
  // Cheap search verbs shed only at the full cap.
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Route, 3, 4));
  EXPECT_TRUE(RoutedServer::should_shed(Verb::Route, 4, 4));
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Kalt, 3, 4));
  EXPECT_TRUE(RoutedServer::should_shed(Verb::Kalt, 5, 4));
  // Expensive verbs shed first, at half the cap.
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Attack, 1, 4));
  EXPECT_TRUE(RoutedServer::should_shed(Verb::Attack, 2, 4));
  EXPECT_TRUE(RoutedServer::should_shed(Verb::Table, 2, 4));
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Table, 1, 4));
  // Odd cap rounds the expensive threshold up (depth*2 >= cap).
  EXPECT_FALSE(RoutedServer::should_shed(Verb::Attack, 2, 5));
  EXPECT_TRUE(RoutedServer::should_shed(Verb::Attack, 3, 5));
}

TEST(RoutedOverload, QueueCapShedsButAnswersEveryRequest) {
  RoutedOptions options;
  options.threads = 1;
  options.max_queue = 1;
  OverloadHarness harness(options);
  TestClient client(harness.port());

  // A stalled ping parks the single worker, then a pipelined burst of
  // routes arrives while it sleeps: every route must be answered --
  // admitted or shed -- and at least one must shed, because depth stays
  // at the cap (one queued route) until the stall ends.
  stall_next_request();
  std::string burst = "ping 1\n";
  for (int i = 2; i <= 12; ++i) burst += "route " + std::to_string(i) + " 0 1\n";
  client.send_line(burst.substr(0, burst.size() - 1));

  std::vector<bool> answered(13, false);
  std::size_t shed = 0;
  for (int i = 0; i < 12; ++i) {
    const Response response = client.read_response();
    ASSERT_GE(response.id, 1u);
    ASSERT_LE(response.id, 12u);
    EXPECT_FALSE(answered[response.id]) << "duplicate response id " << response.id;
    answered[response.id] = true;
    if (!response.ok) {
      EXPECT_NE(response.error.find("overloaded"), std::string::npos) << response.error;
      ++shed;
    }
  }
  fault::FaultRegistry::instance().reset();
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(harness.stats().shed, shed);
  EXPECT_EQ(harness.stats().queue_depth, 0u);  // gauge returns to idle

  // After the burst drains the server admits routes again.
  client.send_line("route 20 0 1");
  EXPECT_TRUE(client.read_response().ok);
}

TEST(RoutedOverload, InflightCapShedsPerConnection) {
  RoutedOptions options;
  options.threads = 1;
  options.max_inflight = 1;
  OverloadHarness harness(options);
  TestClient client(harness.port());

  // The stalled ping holds pending=1 on this connection until its response
  // is delivered, so both pipelined routes behind it exceed the inflight cap.
  stall_next_request();
  client.send_line("ping 1\nroute 2 0 1\nroute 3 0 1");
  std::size_t shed = 0;
  for (int i = 0; i < 3; ++i) {
    const Response response = client.read_response();
    if (!response.ok) {
      EXPECT_NE(response.error.find("overloaded"), std::string::npos) << response.error;
      ++shed;
    }
  }
  fault::FaultRegistry::instance().reset();
  EXPECT_EQ(shed, 2u);
  EXPECT_EQ(harness.stats().shed, 2u);

  // A fresh connection has its own inflight budget.
  TestClient second(harness.port());
  second.send_line("route 10 0 1");
  EXPECT_TRUE(second.read_response().ok);
}

TEST(RoutedOverload, RequestDeadlineTokenExpiresWhileQueued) {
  RoutedOptions options;
  options.threads = 1;
  OverloadHarness harness(options);
  TestClient client(harness.port());

  // The route's 1 ms deadline starts at parse time; the stalled ping
  // occupies the only worker far longer than that, so the route must be
  // dropped before execution with the deadline taxonomy.
  stall_next_request();
  client.send_line("ping 1\nroute 2 0 1 deadline=1");
  Response first = client.read_response();
  Response second = client.read_response();
  if (first.id != 2) std::swap(first, second);
  fault::FaultRegistry::instance().reset();
  ASSERT_EQ(first.id, 2u);
  EXPECT_FALSE(first.ok);
  EXPECT_NE(first.error.find("deadline-exceeded"), std::string::npos) << first.error;
  EXPECT_TRUE(second.ok) << second.error;  // the stalled request itself completes
  EXPECT_EQ(harness.stats().deadline_exceeded, 1u);

  // Generous deadlines pass untouched.
  client.send_line("route 5 0 1 deadline=60000");
  EXPECT_TRUE(client.read_response().ok);
}

TEST(RoutedOverload, ServerDefaultDeadlineApplies) {
  RoutedOptions options;
  options.threads = 1;
  options.deadline_s = 0.001;  // MTS_DEADLINE_MS=1 equivalent
  OverloadHarness harness(options);
  TestClient client(harness.port());

  // Same shape as the token test, but request 2's deadline comes from the
  // server default; the token overrides it upward for the stalled ping
  // (whose dequeue must not race the 1 ms default) and for request 3.
  stall_next_request();
  client.send_line("ping 1 deadline=60000\nroute 2 0 1\nroute 3 0 1 deadline=60000");
  std::size_t deadline_errors = 0;
  for (int i = 0; i < 3; ++i) {
    const Response response = client.read_response();
    if (response.id == 2) {
      EXPECT_FALSE(response.ok);
      EXPECT_NE(response.error.find("deadline-exceeded"), std::string::npos) << response.error;
      ++deadline_errors;
    }
    if (response.id == 3) {
      EXPECT_TRUE(response.ok) << response.error;
    }
  }
  fault::FaultRegistry::instance().reset();
  EXPECT_EQ(deadline_errors, 1u);
}

TEST(RoutedOverload, StalledClientWriteDoesNotBlockOtherConnections) {
  RoutedOptions options;
  options.threads = 1;  // one worker: if a write ran on it, everyone would stall
  OverloadHarness harness(options);
  TestClient stalled(harness.port());
  TestClient healthy(harness.port());

  // Arm the first net.write hit to stall.  The stalled client's ping
  // response is that first hit: its writer sleeps kStallMillis mid-send.
  fault::FaultRegistry::instance().arm("net.write", 1, fault::Action::Stall);
  stalled.send_line("ping 1");
  // Give the worker time to answer ping 1 and its writer to enter the
  // stall; the worker itself is free again within microseconds.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const Stopwatch rtt;
  healthy.send_line("ping 2");
  EXPECT_TRUE(healthy.read_response().ok);
  // The healthy connection's round trip must not absorb the stall: the
  // write queue decouples workers from client sockets.
  EXPECT_LT(rtt.seconds(), fault::kStallMillis / 1000.0 * 0.75);

  // The stalled write proceeds after the sleep -- the response arrives.
  const Response late = stalled.read_response();
  fault::FaultRegistry::instance().reset();
  EXPECT_TRUE(late.ok);
  EXPECT_EQ(late.id, 1u);
  EXPECT_EQ(harness.stats().slow_client_disconnects, 0u);
}

TEST(RoutedOverload, SlowClientEvictedAtWriteQueueByteCap) {
  RoutedOptions options;
  options.threads = 2;
  options.max_write_queue_bytes = 64;  // a handful of pong lines
  OverloadHarness harness(options);
  TestClient client(harness.port());

  // Stall the writer on its first send while the workers keep producing
  // responses the client never reads: the backlog crosses the byte cap
  // and the connection must be evicted, not grow without bound.
  fault::FaultRegistry::instance().arm("net.write", 1, fault::Action::Stall);
  std::string burst;
  for (int i = 1; i <= 32; ++i) burst += "ping " + std::to_string(i) + "\n";
  client.send_line(burst.substr(0, burst.size() - 1));

  // Observing EOF proves the eviction happened -- no timing assumptions.
  const std::size_t lines_before_eof = client.read_until_eof();
  fault::FaultRegistry::instance().reset();
  EXPECT_LT(lines_before_eof, 32u);
  EXPECT_EQ(harness.stats().slow_client_disconnects, 1u);

  // The daemon itself is healthy: a fresh connection is served.
  TestClient second(harness.port());
  second.send_line("ping 100");
  EXPECT_TRUE(second.read_response().ok);
}

TEST(RoutedOverload, LoadgenRetriesShedRequestsToCompletion) {
  RoutedOptions options;
  options.threads = 1;
  options.max_queue = 2;
  OverloadHarness harness(options);

  LoadgenOptions load;
  load.requests = 20;
  load.connections = 2;
  load.window = 8;
  load.mix = Mix::Attack;
  load.attack_rank = 8;  // slow enough that the queue cap binds
  load.retry_limit = 50;
  const LoadReport report = run_loadgen("127.0.0.1", harness.port(), load);

  // Every request reaches a terminal answer: retries absorb transient
  // sheds, exhausted retries surface as structured errors, nothing drops.
  EXPECT_EQ(report.sent, 20u);
  EXPECT_EQ(report.completed, 20u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_FALSE(report.partial);
  EXPECT_GE(report.retried, 1u);
  EXPECT_GE(harness.stats().shed, 1u);
}

TEST(RoutedOverload, LoadgenReconnectsAfterEviction) {
  RoutedOptions options;
  options.threads = 2;
  OverloadHarness harness(options);

  // Hit 1 is the loadgen's own `graph` size probe; hit 2 is the first
  // response on its replay connection.  A throw there is a hard write
  // failure -- the writer treats the peer as gone and evicts -- so the
  // replay connection dies mid-load exactly once and must dial back in,
  // re-sending every in-flight request.
  fault::FaultRegistry::instance().arm("net.write", 2, fault::Action::Throw);
  LoadgenOptions load;
  load.requests = 40;
  load.connections = 1;
  load.window = 16;
  load.max_reconnects = 4;
  const LoadReport report = run_loadgen("127.0.0.1", harness.port(), load);
  fault::FaultRegistry::instance().reset();

  EXPECT_EQ(report.reconnects, 1u);
  EXPECT_EQ(report.sent, 40u);
  EXPECT_EQ(report.completed, 40u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_FALSE(report.partial);
  EXPECT_EQ(harness.stats().slow_client_disconnects, 1u);
}

TEST(RoutedOverload, ReconnectBackoffIsDeterministicCappedAndJittered) {
  for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
    const double a = reconnect_backoff_s(7, 0, attempt);
    EXPECT_EQ(a, reconnect_backoff_s(7, 0, attempt)) << "same inputs, same delay";
    // Jitter scales the capped exponential by [0.5, 1.0].
    const double cap = 0.640;
    const double base = 0.010 * static_cast<double>(1ULL << std::min<std::size_t>(attempt - 1, 6));
    const double exp = std::min(cap, base);
    EXPECT_GE(a, exp * 0.5);
    EXPECT_LE(a, exp);
  }
  // Different connections and seeds draw from different jitter streams.
  EXPECT_NE(reconnect_backoff_s(7, 0, 1), reconnect_backoff_s(7, 1, 1));
  EXPECT_NE(reconnect_backoff_s(7, 0, 1), reconnect_backoff_s(8, 0, 1));
}

TEST(RoutedOverload, GenerousKnobsLeaveWireBytesIdentical) {
  // Pid-qualified so concurrent runs of this binary never share dumps.
  const std::string tag = std::to_string(::getpid());
  const std::string dump_off = ::testing::TempDir() + "overload_dump_off." + tag + ".txt";
  const std::string dump_on = ::testing::TempDir() + "overload_dump_on." + tag + ".txt";
  const auto run_against = [](const RoutedOptions& server_options, const std::string& dump) {
    OverloadHarness harness(server_options);
    LoadgenOptions load;
    load.requests = 80;
    load.connections = 2;
    load.mix = Mix::Mixed;
    load.attack_rank = 2;
    load.dump_path = dump;
    const LoadReport report = run_loadgen("127.0.0.1", harness.port(), load);
    EXPECT_EQ(report.dropped, 0u);
    return harness.stats();
  };

  RoutedOptions off;
  off.threads = 2;
  run_against(off, dump_off);

  // Armed but non-binding knobs must not change a single response byte.
  RoutedOptions on;
  on.threads = 2;
  on.max_inflight = 10000;
  on.max_queue = 10000;
  on.deadline_s = 600.0;
  on.write_timeout_s = 600.0;
  const RoutedStats stats = run_against(on, dump_on);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.slow_client_disconnects, 0u);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const std::string off_bytes = slurp(dump_off);
  EXPECT_FALSE(off_bytes.empty());
  EXPECT_EQ(off_bytes, slurp(dump_on));
  std::remove(dump_off.c_str());
  std::remove(dump_on.c_str());
}

TEST(RoutedOverload, StatsVerbExposesOverloadCounters) {
  RoutedOptions options;
  options.threads = 1;
  options.max_queue = 1;
  OverloadHarness harness(options);
  TestClient client(harness.port());
  stall_next_request();
  client.send_line("ping 1\nroute 2 0 1\nroute 3 0 1");
  for (int i = 0; i < 3; ++i) client.read_response();
  fault::FaultRegistry::instance().reset();

  client.send_line("stats 9");
  const Response stats = client.read_response();
  ASSERT_TRUE(stats.ok);
  EXPECT_FALSE(stats.field("server.shed").empty());
  EXPECT_EQ(stats.field("server.deadline_exceeded"), "0");
  EXPECT_EQ(stats.field("server.slow_client_disconnects"), "0");
  EXPECT_EQ(stats.field("routed.queue_depth"), "0");
  EXPECT_EQ(stats.field("server.shed"), std::to_string(harness.stats().shed));
}

}  // namespace
}  // namespace mts::net
