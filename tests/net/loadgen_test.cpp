#include "net/loadgen.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace mts::net {
namespace {

TEST(Loadgen, ParseMixRoundTripsAndRejects) {
  for (const Mix mix : {Mix::Route, Mix::Kalt, Mix::Attack, Mix::Mixed}) {
    EXPECT_EQ(parse_mix(to_string(mix)), mix);
  }
  EXPECT_THROW(parse_mix("chaos"), InvalidInput);
  EXPECT_THROW(parse_mix(""), InvalidInput);
  EXPECT_THROW(parse_mix("Route"), InvalidInput);  // tokens are lowercase
}

TEST(Loadgen, FixedSeedSynthesizesIdenticalStream) {
  LoadgenOptions options;
  options.requests = 500;
  options.seed = 42;
  options.mix = Mix::Mixed;
  const std::vector<Request> a = synthesize_requests(options, 100);
  const std::vector<Request> b = synthesize_requests(options, 100);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b);
  // The serialized wire form is identical too: the replay bytes are a pure
  // function of (options, num_nodes).
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(serialize_request(a[i]), serialize_request(b[i]));
  }
}

TEST(Loadgen, DifferentSeedsDiverge) {
  LoadgenOptions options;
  options.requests = 200;
  options.seed = 1;
  const std::vector<Request> a = synthesize_requests(options, 1000);
  options.seed = 2;
  const std::vector<Request> b = synthesize_requests(options, 1000);
  EXPECT_NE(a, b);
}

TEST(Loadgen, StreamIsIndependentOfConnectionsAndWindow) {
  LoadgenOptions options;
  options.requests = 100;
  options.connections = 1;
  options.window = 1;
  const std::vector<Request> a = synthesize_requests(options, 50);
  options.connections = 16;
  options.window = 64;
  const std::vector<Request> b = synthesize_requests(options, 50);
  EXPECT_EQ(a, b);
}

TEST(Loadgen, IdsAreSequentialFromOne) {
  LoadgenOptions options;
  options.requests = 25;
  const std::vector<Request> stream = synthesize_requests(options, 10);
  ASSERT_EQ(stream.size(), 25u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, i + 1);
  }
}

TEST(Loadgen, RequestsRespectOptionsAndGraphBounds) {
  LoadgenOptions options;
  options.requests = 300;
  options.mix = Mix::Mixed;
  options.kalt_k = 6;
  options.attack_rank = 11;
  options.weight = WeightKind::Length;
  const std::size_t num_nodes = 37;
  std::set<Verb> verbs_seen;
  for (const Request& r : synthesize_requests(options, num_nodes)) {
    verbs_seen.insert(r.verb);
    EXPECT_LT(r.source, num_nodes);
    EXPECT_LT(r.target, num_nodes);
    EXPECT_NE(r.source, r.target);
    EXPECT_EQ(r.weight, WeightKind::Length);
    if (r.verb == Verb::Kalt) {
      EXPECT_EQ(r.k, 6u);
    }
    if (r.verb == Verb::Attack) {
      EXPECT_EQ(r.rank, 11u);
      EXPECT_EQ(r.algorithm, attack::Algorithm::GreedyPathCover);
    }
  }
  // 300 mixed draws at 80/15/5 make all three verbs overwhelmingly likely.
  EXPECT_TRUE(verbs_seen.count(Verb::Route));
  EXPECT_TRUE(verbs_seen.count(Verb::Kalt));
  EXPECT_TRUE(verbs_seen.count(Verb::Attack));
}

TEST(Loadgen, PureMixesSynthesizeOnlyTheirVerb) {
  LoadgenOptions options;
  options.requests = 50;
  for (const auto& [mix, verb] :
       {std::pair{Mix::Route, Verb::Route}, std::pair{Mix::Kalt, Verb::Kalt},
        std::pair{Mix::Attack, Verb::Attack}}) {
    options.mix = mix;
    for (const Request& r : synthesize_requests(options, 20)) {
      EXPECT_EQ(r.verb, verb) << to_string(mix);
    }
  }
}

TEST(Loadgen, ReportPercentilesInterpolateUnlikeTheOldTruncation) {
  // The report now routes through the shared mts::percentile.  Pin the
  // case where it disagrees with loadgen's deleted private estimator:
  // three samples at q=0.99 truncated to sorted[floor(1.98)] = 2.0, while
  // linear interpolation gives 2 + 0.98 * (3 - 2) = 2.98.
  const std::vector<double> samples{3.0, 1.0, 2.0};
  EXPECT_NEAR(mts::percentile(samples, 0.99), 2.98, 1e-12);
  EXPECT_DOUBLE_EQ(mts::percentile(samples, 0.50), 2.0);
  EXPECT_DOUBLE_EQ(mts::percentile(samples, 1.0), 3.0);
}

TEST(Loadgen, UnreachableDaemonThrowsUpFront) {
  LoadgenOptions options;
  options.requests = 1;
  options.connections = 1;
  // Port 1 on loopback: nothing listens there in the test environment.
  EXPECT_THROW(run_loadgen("127.0.0.1", 1, options), Error);
}

}  // namespace
}  // namespace mts::net
