// Shared helpers for the test suite: tiny canonical graphs, random graph
// generation, and brute-force oracles to cross-check fast algorithms.
#pragma once

#include <algorithm>
#include <vector>

#include "core/rng.hpp"
#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"
#include "graph/path.hpp"

namespace mts::test {

/// A graph plus its parallel weight vector.
struct WeightedGraph {
  DiGraph g;
  std::vector<double> weights;

  EdgeId edge(NodeId u, NodeId v, double w) {
    const EdgeId e = g.add_edge(u, v);
    weights.push_back(w);
    return e;
  }
};

/// The classic diamond:  s -> a -> t  (cost 2) and s -> b -> t (cost 3),
/// plus a direct s -> t (cost 4).
struct Diamond {
  WeightedGraph wg;
  NodeId s, a, b, t;
  EdgeId sa, at, sb, bt, st;

  Diamond() {
    s = wg.g.add_node(0, 0);
    a = wg.g.add_node(1, 1);
    b = wg.g.add_node(1, -1);
    t = wg.g.add_node(2, 0);
    sa = wg.edge(s, a, 1.0);
    at = wg.edge(a, t, 1.0);
    sb = wg.edge(s, b, 1.5);
    bt = wg.edge(b, t, 1.5);
    st = wg.edge(s, t, 4.0);
    wg.g.finalize();
  }
};

/// r x c grid with unit-ish weights; two-way edges.  Node (i, j) has id
/// i*c + j.  Horizontal weight `hw`, vertical weight `vw`.
inline WeightedGraph make_grid(int rows, int cols, double hw = 1.0, double vw = 1.0) {
  WeightedGraph wg;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) wg.g.add_node(j, i);
  }
  auto id = [cols](int i, int j) { return NodeId(static_cast<std::uint32_t>(i * cols + j)); };
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (j + 1 < cols) {
        wg.edge(id(i, j), id(i, j + 1), hw);
        wg.edge(id(i, j + 1), id(i, j), hw);
      }
      if (i + 1 < rows) {
        wg.edge(id(i, j), id(i + 1, j), vw);
        wg.edge(id(i + 1, j), id(i, j), vw);
      }
    }
  }
  wg.g.finalize();
  return wg;
}

/// Random sparse digraph with positive weights; guaranteed s=0 -> t=n-1
/// backbone so the pair is connected.
inline WeightedGraph make_random_graph(int n, int extra_edges, Rng& rng) {
  WeightedGraph wg;
  for (int i = 0; i < n; ++i) {
    wg.g.add_node(rng.uniform(0, 100), rng.uniform(0, 100));
  }
  for (int i = 0; i + 1 < n; ++i) {  // backbone
    wg.edge(NodeId(static_cast<std::uint32_t>(i)), NodeId(static_cast<std::uint32_t>(i + 1)),
            rng.uniform(1.0, 5.0));
  }
  for (int k = 0; k < extra_edges; ++k) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(static_cast<std::size_t>(n)));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(static_cast<std::size_t>(n)));
    if (u == v) continue;
    wg.edge(NodeId(u), NodeId(v), rng.uniform(1.0, 5.0));
  }
  wg.g.finalize();
  return wg;
}

/// Brute-force enumeration of all simple s->t paths (for small graphs),
/// sorted by length then lexicographically by edge ids.
inline std::vector<Path> enumerate_simple_paths(const DiGraph& g,
                                                const std::vector<double>& weights, NodeId s,
                                                NodeId t, const EdgeFilter* filter = nullptr) {
  std::vector<Path> result;
  std::vector<std::uint8_t> visited(g.num_nodes(), 0);
  std::vector<EdgeId> stack;

  auto dfs = [&](auto&& self, NodeId u, double length) -> void {
    if (u == t) {
      result.push_back({stack, length});
      return;
    }
    visited[u.value()] = 1;
    for (EdgeId e : g.out_edges(u)) {
      if (!edge_alive(filter, e)) continue;
      const NodeId v = g.edge_to(e);
      if (visited[v.value()]) continue;
      stack.push_back(e);
      self(self, v, length + weights[e.value()]);
      stack.pop_back();
    }
    visited[u.value()] = 0;
  };
  dfs(dfs, s, 0.0);

  std::sort(result.begin(), result.end(), [](const Path& x, const Path& y) {
    if (x.length != y.length) return x.length < y.length;
    return x.edges < y.edges;
  });
  return result;
}

}  // namespace mts::test
