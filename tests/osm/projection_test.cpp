#include "osm/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mts::osm {
namespace {

TEST(Projection, CenterMapsToOrigin) {
  LocalProjection proj(42.36, -71.06);
  const auto xy = proj.to_xy(42.36, -71.06);
  EXPECT_NEAR(xy.x, 0.0, 1e-9);
  EXPECT_NEAR(xy.y, 0.0, 1e-9);
}

TEST(Projection, RoundTrip) {
  LocalProjection proj(41.8781, -87.6298);
  const auto xy = proj.to_xy(41.90, -87.60);
  const auto ll = proj.to_latlon(xy.x, xy.y);
  EXPECT_NEAR(ll.lat, 41.90, 1e-12);
  EXPECT_NEAR(ll.lon, -87.60, 1e-12);
}

TEST(Projection, OneDegreeLatitudeIsAbout111Km) {
  LocalProjection proj(37.0, -122.0);
  const auto xy = proj.to_xy(38.0, -122.0);
  EXPECT_NEAR(xy.y, 111195.0, 200.0);
  EXPECT_NEAR(xy.x, 0.0, 1e-9);
}

TEST(Projection, LongitudeShrinksWithLatitude) {
  LocalProjection equator(0.0, 0.0);
  LocalProjection boston(42.36, 0.0);
  const double at_equator = equator.to_xy(0.0, 1.0).x;
  const double at_boston = boston.to_xy(42.36, 1.0).x;
  EXPECT_NEAR(at_boston / at_equator, std::cos(42.36 * std::numbers::pi / 180.0), 1e-9);
}

TEST(Projection, AgreesWithHaversineLocally) {
  LocalProjection proj(34.05, -118.24);
  // ~2 km east and ~1.5 km north.
  const double lat2 = 34.0635;
  const double lon2 = -118.2185;
  const auto xy = proj.to_xy(lat2, lon2);
  const double planar = std::hypot(xy.x, xy.y);
  const double sphere = haversine_m(34.05, -118.24, lat2, lon2);
  EXPECT_NEAR(planar, sphere, sphere * 1e-3);  // < 0.1% over metro scales
}

TEST(Haversine, ZeroDistance) {
  EXPECT_DOUBLE_EQ(haversine_m(10.0, 20.0, 10.0, 20.0), 0.0);
}

TEST(Haversine, KnownCityPair) {
  // Boston -> Chicago is about 1366 km great-circle.
  const double d = haversine_m(42.3601, -71.0589, 41.8781, -87.6298);
  EXPECT_NEAR(d, 1.366e6, 2e4);
}

TEST(PointToSegment, ProjectsOntoInterior) {
  const auto proj = project_point_to_segment({1.0, 1.0}, {0.0, 0.0}, {2.0, 0.0});
  EXPECT_NEAR(proj.t, 0.5, 1e-12);
  EXPECT_NEAR(proj.distance, 1.0, 1e-12);
  EXPECT_NEAR(proj.closest.x, 1.0, 1e-12);
  EXPECT_NEAR(proj.closest.y, 0.0, 1e-12);
}

TEST(PointToSegment, ClampsToEndpoints) {
  const auto before = project_point_to_segment({-1.0, 1.0}, {0.0, 0.0}, {2.0, 0.0});
  EXPECT_DOUBLE_EQ(before.t, 0.0);
  EXPECT_NEAR(before.distance, std::sqrt(2.0), 1e-12);
  const auto after = project_point_to_segment({3.0, 0.0}, {0.0, 0.0}, {2.0, 0.0});
  EXPECT_DOUBLE_EQ(after.t, 1.0);
  EXPECT_NEAR(after.distance, 1.0, 1e-12);
}

TEST(PointToSegment, DegenerateSegment) {
  const auto proj = project_point_to_segment({3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(proj.t, 0.0);
  EXPECT_NEAR(proj.distance, 5.0, 1e-12);
}

}  // namespace
}  // namespace mts::osm
