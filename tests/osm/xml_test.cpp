#include "osm/xml.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace mts::osm {
namespace {

OsmData sample_data() {
  OsmData data;
  OsmNode n1;
  n1.id = OsmNodeId(1);
  n1.lat = 42.36;
  n1.lon = -71.06;
  OsmNode n2;
  n2.id = OsmNodeId(2);
  n2.lat = 42.37;
  n2.lon = -71.05;
  n2.tags["amenity"] = "hospital";
  n2.tags["name"] = "Mass <General> & \"Friends\"";
  data.nodes = {n1, n2};

  OsmWay way;
  way.id = OsmWayId(100);
  way.node_refs = {OsmNodeId(1), OsmNodeId(2)};
  way.tags["highway"] = "residential";
  way.tags["maxspeed"] = "25 mph";
  way.tags["oneway"] = "yes";
  data.ways = {way};
  return data;
}

TEST(XmlEscape, RoundTripsSpecialCharacters) {
  const std::string raw = "a & b < c > d \" e ' f";
  EXPECT_EQ(xml_unescape(xml_escape(raw)), raw);
}

TEST(XmlUnescape, NumericReferences) {
  EXPECT_EQ(xml_unescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(xml_unescape("&#233;"), "\xC3\xA9");  // é in UTF-8
}

TEST(XmlUnescape, RejectsBadEntities) {
  EXPECT_THROW(xml_unescape("&bogus;"), InvalidInput);
  EXPECT_THROW(xml_unescape("&unterminated"), InvalidInput);
  EXPECT_THROW(xml_unescape("&#xZZ;"), InvalidInput);
}

TEST(OsmXml, WriteParseRoundTrip) {
  const OsmData original = sample_data();
  std::stringstream stream;
  write_osm_xml(original, stream);
  const OsmData parsed = parse_osm_xml(stream);

  ASSERT_EQ(parsed.nodes.size(), 2u);
  ASSERT_EQ(parsed.ways.size(), 1u);
  EXPECT_EQ(parsed.nodes[0].id, OsmNodeId(1));
  EXPECT_NEAR(parsed.nodes[0].lat, 42.36, 1e-9);
  EXPECT_NEAR(parsed.nodes[1].lon, -71.05, 1e-9);
  EXPECT_EQ(*parsed.nodes[1].tag("amenity"), "hospital");
  EXPECT_EQ(*parsed.nodes[1].tag("name"), "Mass <General> & \"Friends\"");
  EXPECT_EQ(parsed.ways[0].id, OsmWayId(100));
  EXPECT_EQ(parsed.ways[0].node_refs,
            (std::vector<OsmNodeId>{OsmNodeId(1), OsmNodeId(2)}));
  EXPECT_EQ(*parsed.ways[0].tag("maxspeed"), "25 mph");
  EXPECT_EQ(*parsed.ways[0].tag("oneway"), "yes");
}

TEST(OsmXml, ParsesSingleQuotedAttributesAndComments) {
  std::stringstream in(R"(<?xml version='1.0'?>
<!-- a comment <node id="99"/> inside -->
<osm version='0.6'>
  <node id='5' lat='1.5' lon='2.5'/>
</osm>)");
  const auto data = parse_osm_xml(in);
  ASSERT_EQ(data.nodes.size(), 1u);
  EXPECT_EQ(data.nodes[0].id, OsmNodeId(5));
}

TEST(OsmXml, SkipsUnknownElements) {
  std::stringstream in(R"(<osm>
  <bounds minlat="0" maxlat="1"/>
  <relation id="7"><member type="way" ref="1"/><tag k="type" v="route"/></relation>
  <node id="1" lat="0" lon="0"/>
</osm>)");
  const auto data = parse_osm_xml(in);
  ASSERT_EQ(data.nodes.size(), 1u);
  EXPECT_TRUE(data.nodes[0].tags.empty());  // relation's tag not attributed
  EXPECT_TRUE(data.ways.empty());
}

TEST(OsmXml, RejectsMissingAttributes) {
  std::stringstream in("<osm><node id=\"1\" lat=\"0\"/></osm>");
  EXPECT_THROW(parse_osm_xml(in), InvalidInput);
}

TEST(OsmXml, RejectsMalformedNumbers) {
  std::stringstream in("<osm><node id=\"abc\" lat=\"0\" lon=\"0\"/></osm>");
  EXPECT_THROW(parse_osm_xml(in), InvalidInput);
}

TEST(OsmXml, RejectsUnterminatedElement) {
  std::stringstream in("<osm><node id=\"1\" lat=\"0\" lon=\"0\"");
  EXPECT_THROW(parse_osm_xml(in), InvalidInput);
}

TEST(OsmXml, EmptyDocument) {
  std::stringstream in("<osm/>");
  const auto data = parse_osm_xml(in);
  EXPECT_TRUE(data.nodes.empty());
  EXPECT_TRUE(data.ways.empty());
}

TEST(OsmXml, NodeIndexMapsIds) {
  const auto data = sample_data();
  const auto index = data.node_index();
  EXPECT_EQ(index.at(OsmNodeId(1)), 0u);
  EXPECT_EQ(index.at(OsmNodeId(2)), 1u);
}

}  // namespace
}  // namespace mts::osm
