#include "osm/road_network.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/units.hpp"
#include "graph/connectivity.hpp"

namespace mts::osm {
namespace {

/// 3-node east-west street at ~42.36N with ~100 m spacing, plus a hospital
/// POI ~60 m north of the middle segment.
OsmData small_city() {
  OsmData data;
  auto add_node = [&](std::int64_t id, double lat, double lon) {
    OsmNode n;
    n.id = OsmNodeId(id);
    n.lat = lat;
    n.lon = lon;
    data.nodes.push_back(std::move(n));
  };
  // ~0.0012 deg lon ~= 100 m at this latitude.
  add_node(1, 42.3600, -71.0600);
  add_node(2, 42.3600, -71.0588);
  add_node(3, 42.3600, -71.0576);
  // Hospital ~60 m north of the middle of segment 1-2.
  OsmNode hospital;
  hospital.id = OsmNodeId(50);
  hospital.lat = 42.36054;
  hospital.lon = -71.0594;
  hospital.tags["amenity"] = "hospital";
  hospital.tags["name"] = "Test General";
  data.nodes.push_back(std::move(hospital));

  OsmWay way;
  way.id = OsmWayId(100);
  way.node_refs = {OsmNodeId(1), OsmNodeId(2), OsmNodeId(3)};
  way.tags["highway"] = "residential";
  way.tags["maxspeed"] = "25 mph";
  way.tags["lanes"] = "2";
  way.tags["width"] = "8.0";
  way.tags["name"] = "Main St";
  data.ways.push_back(std::move(way));
  return data;
}

TEST(RoadNetwork, TwoWayStreetMakesEdgePairs) {
  auto data = small_city();
  data.nodes.pop_back();  // drop the hospital for the pure-topology check
  BuildOptions options;
  options.snap_pois = false;
  const auto network = RoadNetwork::build(data, options);
  EXPECT_EQ(network.graph().num_nodes(), 3u);
  EXPECT_EQ(network.graph().num_edges(), 4u);  // 2 segments x 2 directions
}

TEST(RoadNetwork, SegmentAttributesFromTags) {
  auto data = small_city();
  const auto network = RoadNetwork::build(data);
  bool checked = false;
  for (EdgeId e : network.graph().edges()) {
    const auto& seg = network.segment(e);
    if (seg.artificial) continue;
    EXPECT_NEAR(seg.speed_mps, mph_to_mps(25), 1e-9);
    EXPECT_EQ(seg.lanes, 1);                 // 2 total / 2 directions
    EXPECT_NEAR(seg.width_m, 4.0, 1e-9);     // 8.0 total / 2
    EXPECT_EQ(seg.highway, HighwayClass::Residential);
    EXPECT_EQ(network.segment_name(e), "Main St");
    checked = true;
  }
  EXPECT_TRUE(checked);
}

TEST(RoadNetwork, SegmentLengthsMatchHaversine) {
  auto data = small_city();
  BuildOptions options;
  options.snap_pois = false;
  data.nodes.pop_back();
  const auto network = RoadNetwork::build(data, options);
  double total = 0.0;
  for (EdgeId e : network.graph().edges()) total += network.segment(e).length_m;
  const double expected =
      2.0 * (haversine_m(42.36, -71.06, 42.36, -71.0588) +
             haversine_m(42.36, -71.0588, 42.36, -71.0576));
  EXPECT_NEAR(total, expected, 0.01);
}

TEST(RoadNetwork, OnewayForwardOnly) {
  auto data = small_city();
  data.nodes.pop_back();
  data.ways[0].tags["oneway"] = "yes";
  BuildOptions options;
  options.snap_pois = false;
  options.keep_largest_scc = false;  // a one-way chain has no big SCC
  const auto network = RoadNetwork::build(data, options);
  EXPECT_EQ(network.graph().num_edges(), 2u);
  for (EdgeId e : network.graph().edges()) {
    EXPECT_LT(network.graph().edge_from(e).value(), network.graph().edge_to(e).value());
  }
}

TEST(RoadNetwork, OnewayReverse) {
  auto data = small_city();
  data.nodes.pop_back();
  data.ways[0].tags["oneway"] = "-1";
  BuildOptions options;
  options.snap_pois = false;
  options.keep_largest_scc = false;
  const auto network = RoadNetwork::build(data, options);
  EXPECT_EQ(network.graph().num_edges(), 2u);
  for (EdgeId e : network.graph().edges()) {
    EXPECT_GT(network.graph().edge_from(e).value(), network.graph().edge_to(e).value());
  }
}

TEST(RoadNetwork, PoiSnapInsertsArtificialNodeAndConnector) {
  const auto network = RoadNetwork::build(small_city());
  ASSERT_EQ(network.pois().size(), 1u);
  const auto& poi = network.pois()[0];
  EXPECT_EQ(poi.name, "Test General");
  ASSERT_TRUE(poi.node.valid());
  ASSERT_TRUE(poi.access_node.valid());
  EXPECT_EQ(network.node_kind(poi.node), NodeKind::Poi);

  // The middle of segment 1-2 is not near an endpoint, so a split point
  // must have been inserted: 3 original + 1 split + 1 poi nodes.
  EXPECT_EQ(network.node_kind(poi.access_node), NodeKind::SplitPoint);
  EXPECT_EQ(network.graph().num_nodes(), 5u);
  // Edges: 2 (split 1-2 both dirs -> 4) + 2 (2-3 both dirs) + 2 connectors.
  EXPECT_EQ(network.graph().num_edges(), 8u);

  // Connector edges are artificial and both directions exist.
  int artificial = 0;
  for (EdgeId e : network.graph().edges()) {
    if (network.segment(e).artificial) ++artificial;
  }
  EXPECT_EQ(artificial, 2);

  // The hospital is mutually reachable from the street.
  EXPECT_TRUE(mts::is_reachable(network.graph(), NodeId(0), poi.node));
  EXPECT_TRUE(mts::is_reachable(network.graph(), poi.node, NodeId(0)));
}

TEST(RoadNetwork, SplitPreservesTotalLength) {
  const auto network = RoadNetwork::build(small_city());
  double road_total = 0.0;
  for (EdgeId e : network.graph().edges()) {
    if (!network.segment(e).artificial) road_total += network.segment(e).length_m;
  }
  const double expected =
      2.0 * (haversine_m(42.36, -71.06, 42.36, -71.0588) +
             haversine_m(42.36, -71.0588, 42.36, -71.0576));
  EXPECT_NEAR(road_total, expected, 0.05);
}

TEST(RoadNetwork, PoiNearEndpointReusesNode) {
  auto data = small_city();
  // Move the hospital right next to node 3 (the east end).
  data.nodes[3].lat = 42.36003;
  data.nodes[3].lon = -71.05761;
  const auto network = RoadNetwork::build(data);
  const auto& poi = network.pois()[0];
  EXPECT_EQ(network.node_kind(poi.access_node), NodeKind::Intersection);
  EXPECT_EQ(network.graph().num_nodes(), 4u);  // no split point
}

TEST(RoadNetwork, IntersectionNodesExcludePoiAndSplit) {
  const auto network = RoadNetwork::build(small_city());
  const auto intersections = network.intersection_nodes();
  EXPECT_EQ(intersections.size(), 3u);
  for (NodeId n : intersections) {
    EXPECT_EQ(network.node_kind(n), NodeKind::Intersection);
  }
}

TEST(RoadNetwork, RoundaboutImpliesOneway) {
  auto data = small_city();
  data.nodes.pop_back();
  data.ways[0].tags["junction"] = "roundabout";
  BuildOptions options;
  options.snap_pois = false;
  options.keep_largest_scc = false;
  const auto network = RoadNetwork::build(data, options);
  EXPECT_EQ(network.graph().num_edges(), 2u);  // forward direction only
  // An explicit oneway tag still wins.
  data.ways[0].tags["oneway"] = "no";
  const auto two_way = RoadNetwork::build(data, options);
  EXPECT_EQ(two_way.graph().num_edges(), 4u);
}

TEST(RoadNetwork, NonRoadWaysIgnored) {
  auto data = small_city();
  OsmWay footway;
  footway.id = OsmWayId(200);
  footway.node_refs = {OsmNodeId(1), OsmNodeId(3)};
  footway.tags["highway"] = "footway";
  data.ways.push_back(std::move(footway));
  const auto network = RoadNetwork::build(data);
  // Same as without the footway.
  EXPECT_EQ(network.graph().num_edges(), 8u);
}

TEST(RoadNetwork, DanglingNodeRefThrows) {
  auto data = small_city();
  data.ways[0].node_refs.push_back(OsmNodeId(999));
  EXPECT_THROW(RoadNetwork::build(data), InvalidInput);
}

TEST(RoadNetwork, NoRoadsThrows) {
  OsmData data;
  OsmNode n;
  n.id = OsmNodeId(1);
  data.nodes.push_back(n);
  EXPECT_THROW(RoadNetwork::build(data), InvalidInput);
}

TEST(RoadNetwork, KeepLargestSccDropsIsland) {
  auto data = small_city();
  data.nodes.pop_back();  // no hospital
  // Add a disconnected 2-node island street far away.
  auto add_node = [&](std::int64_t id, double lat, double lon) {
    OsmNode n;
    n.id = OsmNodeId(id);
    n.lat = lat;
    n.lon = lon;
    data.nodes.push_back(std::move(n));
  };
  add_node(10, 42.40, -71.00);
  add_node(11, 42.40, -71.001);
  OsmWay island;
  island.id = OsmWayId(300);
  island.node_refs = {OsmNodeId(10), OsmNodeId(11)};
  island.tags["highway"] = "residential";
  data.ways.push_back(std::move(island));

  BuildOptions options;
  options.snap_pois = false;
  const auto network = RoadNetwork::build(data, options);
  EXPECT_EQ(network.graph().num_nodes(), 3u);  // island dropped

  options.keep_largest_scc = false;
  const auto full = RoadNetwork::build(data, options);
  EXPECT_EQ(full.graph().num_nodes(), 5u);
}

TEST(RoadNetwork, WeightVectorsMatchSegments) {
  const auto network = RoadNetwork::build(small_city());
  const auto lengths = network.edge_lengths();
  const auto times = network.edge_times();
  ASSERT_EQ(lengths.size(), network.graph().num_edges());
  ASSERT_EQ(times.size(), network.graph().num_edges());
  for (EdgeId e : network.graph().edges()) {
    EXPECT_DOUBLE_EQ(lengths[e.value()], network.segment(e).length_m);
    EXPECT_NEAR(times[e.value()],
                network.segment(e).length_m / network.segment(e).speed_mps, 1e-12);
    EXPECT_GT(times[e.value()], 0.0);
  }
}

TEST(RoadNetwork, FindPoiByName) {
  const auto network = RoadNetwork::build(small_city());
  EXPECT_NE(network.find_poi("Test General"), nullptr);
  EXPECT_EQ(network.find_poi("Nonexistent"), nullptr);
}

}  // namespace
}  // namespace mts::osm
