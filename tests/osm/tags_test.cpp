#include "osm/tags.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace mts::osm {
namespace {

TEST(ParseHighway, CoreClasses) {
  EXPECT_EQ(parse_highway("motorway"), HighwayClass::Motorway);
  EXPECT_EQ(parse_highway("primary"), HighwayClass::Primary);
  EXPECT_EQ(parse_highway("residential"), HighwayClass::Residential);
  EXPECT_EQ(parse_highway("service"), HighwayClass::Service);
}

TEST(ParseHighway, LinksFoldToBase) {
  EXPECT_EQ(parse_highway("motorway_link"), HighwayClass::Motorway);
  EXPECT_EQ(parse_highway("primary_link"), HighwayClass::Primary);
}

TEST(ParseHighway, NonDrivableReturnsNullopt) {
  EXPECT_FALSE(parse_highway("footway").has_value());
  EXPECT_FALSE(parse_highway("cycleway").has_value());
  EXPECT_FALSE(parse_highway("steps").has_value());
}

TEST(ParseHighway, UnknownFallsBackToUnclassified) {
  EXPECT_EQ(parse_highway("busway_of_the_future"), HighwayClass::Unclassified);
}

TEST(ParseHighway, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(parse_highway(" Residential "), HighwayClass::Residential);
}

TEST(ParseMaxspeed, MphAndKmh) {
  EXPECT_NEAR(*parse_maxspeed("25 mph"), mph_to_mps(25), 1e-9);
  EXPECT_NEAR(*parse_maxspeed("30mph"), mph_to_mps(30), 1e-9);
  EXPECT_NEAR(*parse_maxspeed("50"), kmh_to_mps(50), 1e-9);  // bare = km/h
  EXPECT_NEAR(*parse_maxspeed("50 km/h"), kmh_to_mps(50), 1e-9);
}

TEST(ParseMaxspeed, RejectsGarbage) {
  EXPECT_FALSE(parse_maxspeed("fast").has_value());
  EXPECT_FALSE(parse_maxspeed("-10").has_value());
  EXPECT_FALSE(parse_maxspeed("30 knots").has_value());
}

TEST(ParseLanes, ValidAndInvalid) {
  EXPECT_EQ(*parse_lanes("4"), 4);
  EXPECT_EQ(*parse_lanes(" 2 "), 2);
  EXPECT_FALSE(parse_lanes("2.5").has_value());
  EXPECT_FALSE(parse_lanes("0").has_value());
  EXPECT_FALSE(parse_lanes("two").has_value());
}

TEST(ParseWidth, MetersAndFeet) {
  EXPECT_NEAR(*parse_width("7.5"), 7.5, 1e-9);
  EXPECT_NEAR(*parse_width("7.5 m"), 7.5, 1e-9);
  EXPECT_NEAR(*parse_width("24'"), feet_to_meters(24), 1e-9);
  EXPECT_NEAR(*parse_width("24 ft"), feet_to_meters(24), 1e-9);
  EXPECT_FALSE(parse_width("-3").has_value());
  EXPECT_FALSE(parse_width("wide").has_value());
}

TEST(ParseOneway, AllSpellings) {
  EXPECT_EQ(parse_oneway("yes"), OnewayDirection::Forward);
  EXPECT_EQ(parse_oneway("true"), OnewayDirection::Forward);
  EXPECT_EQ(parse_oneway("1"), OnewayDirection::Forward);
  EXPECT_EQ(parse_oneway("-1"), OnewayDirection::Backward);
  EXPECT_EQ(parse_oneway("reverse"), OnewayDirection::Backward);
  EXPECT_EQ(parse_oneway("no"), OnewayDirection::No);
  EXPECT_EQ(parse_oneway("whatever"), OnewayDirection::No);
}

TEST(HighwayDefaults, MonotoneSpeedByImportance) {
  EXPECT_GT(highway_defaults(HighwayClass::Motorway).speed_mps,
            highway_defaults(HighwayClass::Primary).speed_mps);
  EXPECT_GT(highway_defaults(HighwayClass::Primary).speed_mps,
            highway_defaults(HighwayClass::Residential).speed_mps);
  EXPECT_GT(highway_defaults(HighwayClass::Residential).speed_mps,
            highway_defaults(HighwayClass::Service).speed_mps);
  EXPECT_GE(highway_defaults(HighwayClass::Motorway).lanes_per_dir, 3);
}

TEST(ToString, RoundTripsThroughParse) {
  for (HighwayClass hw : {HighwayClass::Motorway, HighwayClass::Trunk, HighwayClass::Primary,
                          HighwayClass::Secondary, HighwayClass::Tertiary,
                          HighwayClass::Residential, HighwayClass::Service,
                          HighwayClass::Unclassified}) {
    EXPECT_EQ(parse_highway(to_string(hw)), hw);
  }
}

}  // namespace
}  // namespace mts::osm
