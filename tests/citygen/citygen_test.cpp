#include "citygen/generate.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "osm/xml.hpp"

namespace mts::citygen {
namespace {

constexpr double kTestScale = 0.25;  // keep unit tests fast

TEST(CitySpec, AllCitiesHaveFourHospitals) {
  for (City city : kAllCities) {
    const auto spec = city_spec(city);
    EXPECT_EQ(spec.hospitals.size(), 4u) << to_string(city);
    EXPECT_FALSE(spec.districts.empty());
    EXPECT_GT(spec.anchor_lat, 0.0);  // all four cities are northern hemisphere
    EXPECT_LT(spec.anchor_lon, 0.0);  // ... and west of Greenwich
  }
}

TEST(CitySpec, ScaleGrowsNodeCount) {
  const auto small = city_spec(City::Chicago, 0.25);
  const auto large = city_spec(City::Chicago, 1.0);
  EXPECT_GT(large.districts[0].rows, small.districts[0].rows);
}

TEST(CitySpec, RejectsNonPositiveScale) {
  EXPECT_THROW(city_spec(City::Boston, 0.0), PreconditionViolation);
}

TEST(Generate, Deterministic) {
  const auto spec = city_spec(City::Boston, kTestScale);
  const auto a = generate_city_osm(spec, 42);
  const auto b = generate_city_osm(spec, 42);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.ways.size(), b.ways.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes[i].lat, b.nodes[i].lat);
    EXPECT_DOUBLE_EQ(a.nodes[i].lon, b.nodes[i].lon);
  }
}

TEST(Generate, DifferentSeedsDiffer) {
  const auto spec = city_spec(City::Boston, kTestScale);
  const auto a = generate_city_osm(spec, 1);
  const auto b = generate_city_osm(spec, 2);
  bool any_diff = a.nodes.size() != b.nodes.size();
  for (std::size_t i = 0; !any_diff && i < a.nodes.size(); ++i) {
    any_diff = a.nodes[i].lat != b.nodes[i].lat;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generate, HospitalsPresentAsPoiNodes) {
  const auto spec = city_spec(City::SanFrancisco, kTestScale);
  const auto data = generate_city_osm(spec, 3);
  int hospitals = 0;
  for (const auto& node : data.nodes) {
    if (const auto* amenity = node.tag("amenity"); amenity && *amenity == "hospital") {
      ++hospitals;
      EXPECT_NE(node.tag("name"), nullptr);
    }
  }
  EXPECT_EQ(hospitals, 4);
}

TEST(Generate, WaysCarryRoadTags) {
  const auto spec = city_spec(City::Chicago, kTestScale);
  const auto data = generate_city_osm(spec, 3);
  ASSERT_FALSE(data.ways.empty());
  for (const auto& way : data.ways) {
    EXPECT_NE(way.tag("highway"), nullptr);
    EXPECT_NE(way.tag("maxspeed"), nullptr);
    EXPECT_NE(way.tag("lanes"), nullptr);
    EXPECT_NE(way.tag("width"), nullptr);
    EXPECT_GE(way.node_refs.size(), 2u);
  }
}

TEST(Network, StronglyConnectedWithSnappedHospitals) {
  for (City city : kAllCities) {
    const auto network = generate_city(city, kTestScale, 7);
    EXPECT_EQ(network.pois().size(), 4u) << to_string(city);
    for (const auto& poi : network.pois()) {
      EXPECT_TRUE(poi.node.valid()) << to_string(city) << ": " << poi.name;
    }
    // POI connectors are bidirectional and the road core is one SCC, so
    // the whole graph must be strongly connected.
    const auto scc = mts::strongly_connected_components(network.graph());
    EXPECT_EQ(scc.num_components, 1u) << to_string(city);
  }
}

TEST(Network, AverageDegreeInPaperRange) {
  for (City city : kAllCities) {
    const auto network = generate_city(city, kTestScale, 11);
    const double degree = network.graph().average_degree();
    EXPECT_GT(degree, 3.5) << to_string(city);
    EXPECT_LT(degree, 7.0) << to_string(city);
  }
}

TEST(Network, ChicagoMoreLatticeThanBoston) {
  const auto chicago = generate_city(City::Chicago, kTestScale, 5);
  const auto boston = generate_city(City::Boston, kTestScale, 5);
  const auto m_chicago = mts::compute_network_metrics(chicago.graph());
  const auto m_boston = mts::compute_network_metrics(boston.graph());
  EXPECT_GT(m_chicago.orientation_order, m_boston.orientation_order + 0.15);
}

TEST(Network, RelativeCitySizesMatchPaperOrder) {
  // Paper Table I: LA > Chicago > Boston ~ SF in node count.
  const auto boston = generate_city(City::Boston, kTestScale, 5);
  const auto chicago = generate_city(City::Chicago, kTestScale, 5);
  const auto la = generate_city(City::LosAngeles, kTestScale, 5);
  EXPECT_GT(chicago.graph().num_nodes(), boston.graph().num_nodes());
  EXPECT_GT(la.graph().num_nodes(), chicago.graph().num_nodes());
}

TEST(Network, XmlRoundTripPreservesNetwork) {
  const auto spec = city_spec(City::Boston, kTestScale);
  const auto data = generate_city_osm(spec, 9);

  std::stringstream stream;
  osm::write_osm_xml(data, stream);
  const auto reparsed = osm::parse_osm_xml(stream);

  osm::BuildOptions options;
  options.center = osm::LatLon{spec.anchor_lat, spec.anchor_lon};
  const auto direct = osm::RoadNetwork::build(data, options);
  const auto via_xml = osm::RoadNetwork::build(reparsed, options);

  ASSERT_EQ(via_xml.graph().num_nodes(), direct.graph().num_nodes());
  ASSERT_EQ(via_xml.graph().num_edges(), direct.graph().num_edges());
  for (EdgeId e : direct.graph().edges()) {
    EXPECT_EQ(via_xml.graph().edge_from(e), direct.graph().edge_from(e));
    EXPECT_NEAR(via_xml.segment(e).length_m, direct.segment(e).length_m, 1e-6);
    EXPECT_EQ(via_xml.segment(e).lanes, direct.segment(e).lanes);
  }
  EXPECT_EQ(via_xml.pois().size(), direct.pois().size());
}

TEST(LatticenessSpec, DialMovesOrientationOrder) {
  const auto ordered = generate_network(latticeness_spec(0.0, kTestScale), 13);
  const auto organic = generate_network(latticeness_spec(1.0, kTestScale), 13);
  const double order0 = mts::compute_network_metrics(ordered.graph()).orientation_order;
  const double order1 = mts::compute_network_metrics(organic.graph()).orientation_order;
  EXPECT_GT(order0, order1 + 0.1);
}

TEST(LatticenessSpec, RejectsOutOfRange) {
  EXPECT_THROW(latticeness_spec(1.5), mts::PreconditionViolation);
  EXPECT_THROW(latticeness_spec(-0.1), mts::PreconditionViolation);
}

TEST(Generate, FreewaysProduceMotorwayWays) {
  const auto spec = city_spec(City::LosAngeles, kTestScale);
  const auto data = generate_city_osm(spec, 3);
  int motorway_segments = 0;
  for (const auto& way : data.ways) {
    if (*way.tag("highway") == std::string("motorway")) ++motorway_segments;
  }
  EXPECT_GT(motorway_segments, 0);
}

}  // namespace
}  // namespace mts::citygen
