#include "graph/path.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mts {
namespace {

TEST(Path, LengthSumsWeights) {
  test::Diamond d;
  EXPECT_DOUBLE_EQ(path_length({{d.sa, d.at}}, d.wg.weights), 2.0);
  EXPECT_DOUBLE_EQ(path_length({}, d.wg.weights), 0.0);
}

TEST(Path, NodesSequence) {
  test::Diamond d;
  const Path path{{d.sa, d.at}, 2.0};
  EXPECT_EQ(path_nodes(d.wg.g, path), (std::vector<NodeId>{d.s, d.a, d.t}));
  EXPECT_TRUE(path_nodes(d.wg.g, Path{}).empty());
}

TEST(Path, SimplePathValidation) {
  test::Diamond d;
  EXPECT_TRUE(is_simple_path(d.wg.g, Path{{d.sa, d.at}, 0}, d.s, d.t));
  // Wrong start node.
  EXPECT_FALSE(is_simple_path(d.wg.g, Path{{d.at}, 0}, d.s, d.t));
  // Disconnected edge sequence.
  EXPECT_FALSE(is_simple_path(d.wg.g, Path{{d.sa, d.bt}, 0}, d.s, d.t));
  // Wrong end node.
  EXPECT_FALSE(is_simple_path(d.wg.g, Path{{d.sa}, 0}, d.s, d.t));
  // Empty path: simple iff source == target.
  EXPECT_TRUE(is_simple_path(d.wg.g, Path{}, d.s, d.s));
  EXPECT_FALSE(is_simple_path(d.wg.g, Path{}, d.s, d.t));
}

TEST(Path, RepeatedNodeRejected) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId ab = g.add_edge(a, b);
  const EdgeId ba = g.add_edge(b, a);
  const EdgeId ab2 = g.add_edge(a, b);
  g.finalize();
  // a -> b -> a -> b revisits both nodes.
  EXPECT_FALSE(is_simple_path(g, Path{{ab, ba, ab2}, 0}, a, b));
}

TEST(Path, ReweightRecomputesLength) {
  test::Diamond d;
  Path path{{d.sa, d.at}, 999.0};
  std::vector<double> doubled;
  for (double w : d.wg.weights) doubled.push_back(2.0 * w);
  const Path reweighted = reweight_path(path, doubled);
  EXPECT_DOUBLE_EQ(reweighted.length, 4.0);
  EXPECT_EQ(reweighted.edges, path.edges);
}

TEST(Path, SignatureDistinguishesPathsAndOrder) {
  test::Diamond d;
  const Path p1{{d.sa, d.at}, 0};
  const Path p2{{d.sb, d.bt}, 0};
  const Path p1_reversed{{d.at, d.sa}, 0};
  EXPECT_EQ(path_signature(p1), path_signature(p1));
  EXPECT_NE(path_signature(p1), path_signature(p2));
  EXPECT_NE(path_signature(p1), path_signature(p1_reversed));  // order-sensitive
  EXPECT_NE(path_signature(p1), path_signature(Path{}));
}

TEST(Path, EqualityIsEdgeSequenceOnly) {
  test::Diamond d;
  const Path a{{d.sa, d.at}, 2.0};
  const Path b{{d.sa, d.at}, 999.0};  // stale length
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mts
