#include "graph/bidirectional.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(Bidirectional, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(50, 200, rng);
    for (int trial = 0; trial < 5; ++trial) {
      const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(50)));
      const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(50)));
      const auto expected = shortest_path(wg.g, wg.weights, s, t);
      const auto actual = bidirectional_shortest_path(wg.g, wg.weights, s, t);
      ASSERT_EQ(actual.path.has_value(), expected.has_value())
          << "seed " << seed << " trial " << trial;
      if (expected) {
        EXPECT_NEAR(actual.path->length, expected->length, 1e-9);
        EXPECT_TRUE(is_simple_path(wg.g, *actual.path, s, t));
        EXPECT_NEAR(path_length(actual.path->edges, wg.weights), actual.path->length, 1e-9);
      }
    }
  }
}

TEST(Bidirectional, SourceEqualsTarget) {
  test::Diamond d;
  const auto result = bidirectional_shortest_path(d.wg.g, d.wg.weights, d.s, d.s);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_TRUE(result.path->empty());
}

TEST(Bidirectional, DisconnectedReturnsNoPath) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(b, a);  // wrong direction only
  g.finalize();
  const std::vector<double> w = {1.0};
  EXPECT_FALSE(bidirectional_shortest_path(g, w, a, b).path.has_value());
}

TEST(Bidirectional, RespectsFilter) {
  test::Diamond d;
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  const auto result = bidirectional_shortest_path(d.wg.g, d.wg.weights, d.s, d.t, &filter);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_DOUBLE_EQ(result.path->length, 3.0);
  EXPECT_EQ(result.path->edges, (std::vector<EdgeId>{d.sb, d.bt}));
}

TEST(Bidirectional, SettlesFewerNodesThanDijkstraOnCities) {
  const auto network = citygen::generate_city(citygen::City::LosAngeles, 0.3, 5);
  const auto& g = network.graph();
  const auto times = attack::make_weights(network, attack::WeightType::Time);

  Rng rng(11);
  std::size_t bidi_total = 0;
  std::size_t uni_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const auto bidi = bidirectional_shortest_path(g, times, s, t);
    DijkstraOptions options;
    options.target = t;
    const auto tree = dijkstra(g, times, s, options);
    std::size_t settled = 0;
    for (NodeId n : g.nodes()) {
      // Upper bound on settled: nodes with final distance <= dist(t).
      if (tree.reached(n) && tree.dist[n.value()] <= tree.dist[t.value()]) ++settled;
    }
    bidi_total += bidi.nodes_settled;
    uni_total += settled;
  }
  EXPECT_LT(bidi_total, uni_total);
}

TEST(Bidirectional, HandlesParallelEdges) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b);
  const EdgeId cheap = g.add_edge(a, b);
  g.finalize();
  const std::vector<double> w = {5.0, 1.0};
  const auto result = bidirectional_shortest_path(g, w, a, b);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_DOUBLE_EQ(result.path->length, 1.0);
  EXPECT_EQ(result.path->edges, (std::vector<EdgeId>{cheap}));
}

}  // namespace
}  // namespace mts
