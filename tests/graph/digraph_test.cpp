#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(DiGraph, EmptyGraph) {
  DiGraph g;
  g.finalize();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(DiGraph, AddNodesAndEdges) {
  DiGraph g;
  const NodeId a = g.add_node(1.0, 2.0);
  const NodeId b = g.add_node(3.0, 4.0);
  const EdgeId e = g.add_edge(a, b);
  g.finalize();

  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_from(e), a);
  EXPECT_EQ(g.edge_to(e), b);
  EXPECT_DOUBLE_EQ(g.x(a), 1.0);
  EXPECT_DOUBLE_EQ(g.y(b), 4.0);
}

TEST(DiGraph, AddEdgeRejectsOutOfRangeEndpoint) {
  DiGraph g;
  const NodeId a = g.add_node();
  EXPECT_THROW(g.add_edge(a, NodeId(5)), PreconditionViolation);
}

TEST(DiGraph, AdjacencyRequiresFinalize) {
  DiGraph g;
  const NodeId a = g.add_node();
  g.add_node();
  EXPECT_THROW(static_cast<void>(g.out_edges(a)), PreconditionViolation);
}

TEST(DiGraph, OutAndInEdges) {
  test::Diamond d;
  const auto& g = d.wg.g;

  const auto out_s = g.out_edges(d.s);
  EXPECT_EQ(out_s.size(), 3u);
  const auto in_t = g.in_edges(d.t);
  EXPECT_EQ(in_t.size(), 3u);
  EXPECT_EQ(g.out_degree(d.a), 1u);
  EXPECT_EQ(g.in_degree(d.a), 1u);
  EXPECT_EQ(g.in_degree(d.s), 0u);
}

TEST(DiGraph, AdjacencyPartitionsAllEdges) {
  Rng rng(5);
  auto wg = test::make_random_graph(30, 80, rng);
  std::size_t total_out = 0;
  std::size_t total_in = 0;
  for (NodeId n : wg.g.nodes()) {
    total_out += wg.g.out_degree(n);
    total_in += wg.g.in_degree(n);
    for (EdgeId e : wg.g.out_edges(n)) EXPECT_EQ(wg.g.edge_from(e), n);
    for (EdgeId e : wg.g.in_edges(n)) EXPECT_EQ(wg.g.edge_to(e), n);
  }
  EXPECT_EQ(total_out, wg.g.num_edges());
  EXPECT_EQ(total_in, wg.g.num_edges());
}

TEST(DiGraph, ParallelEdgesAndSelfLoopsAllowed) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b);
  g.add_edge(a, b);
  g.add_edge(a, a);
  g.finalize();
  EXPECT_EQ(g.out_degree(a), 3u);
  EXPECT_EQ(g.in_degree(b), 2u);
  EXPECT_EQ(g.in_degree(a), 1u);
}

TEST(DiGraph, AverageDegreeMatchesFormula) {
  auto wg = test::make_grid(3, 3);
  // 3x3 grid: 12 undirected block faces -> 24 directed edges, 9 nodes.
  EXPECT_EQ(wg.g.num_edges(), 24u);
  EXPECT_DOUBLE_EQ(wg.g.average_degree(), 2.0 * 24 / 9);
}

TEST(DiGraph, FindEdge) {
  test::Diamond d;
  EXPECT_EQ(d.wg.g.find_edge(d.s, d.a), d.sa);
  EXPECT_FALSE(d.wg.g.find_edge(d.a, d.s).valid());
}

TEST(DiGraph, NodeDistance) {
  DiGraph g;
  const NodeId a = g.add_node(0.0, 0.0);
  const NodeId b = g.add_node(3.0, 4.0);
  EXPECT_DOUBLE_EQ(g.node_distance(a, b), 5.0);
}

TEST(DiGraph, AddingAfterFinalizeResetsFinalized) {
  DiGraph g;
  g.add_node();
  g.finalize();
  EXPECT_TRUE(g.finalized());
  g.add_node();
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_TRUE(g.finalized());
}

}  // namespace
}  // namespace mts
