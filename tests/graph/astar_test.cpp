#include "graph/astar.hpp"

#include <gtest/gtest.h>

#include "citygen/generate.hpp"
#include "attack/models.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(AStar, ZeroHeuristicMatchesDijkstra) {
  Rng rng(5);
  auto wg = test::make_random_graph(60, 240, rng);
  const Heuristic zero = [](NodeId) { return 0.0; };
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(60)));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(60)));
    const auto expected = shortest_path(wg.g, wg.weights, s, t);
    const auto actual = astar(wg.g, wg.weights, s, t, zero);
    ASSERT_EQ(actual.path.has_value(), expected.has_value());
    if (expected) {
      EXPECT_NEAR(actual.path->length, expected->length, 1e-9);
    }
  }
}

TEST(AStar, EuclideanHeuristicIsExactOnCityNetworks) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.2, 9);
  const auto& g = network.graph();
  const auto lengths = attack::make_weights(network, attack::WeightType::Length);
  const auto times = attack::make_weights(network, attack::WeightType::Time);

  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));

    // LENGTH: straight-line distance is admissible up to the (tiny)
    // haversine-vs-planar discrepancy; use the certified rate.
    for (const auto* weights : {&lengths, &times}) {
      const double rate = max_admissible_rate(g, *weights);
      const auto result =
          astar(g, *weights, s, t, euclidean_heuristic(g, t, rate));
      const auto expected = shortest_path(g, *weights, s, t);
      ASSERT_EQ(result.path.has_value(), expected.has_value());
      if (expected) {
        EXPECT_NEAR(result.path->length, expected->length, 1e-6 * (1 + expected->length));
      }
    }
  }
}

TEST(AStar, GoalDirectionReducesSettledNodes) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.3, 9);
  const auto& g = network.graph();
  const auto lengths = attack::make_weights(network, attack::WeightType::Length);
  const double rate = max_admissible_rate(g, lengths);

  Rng rng(7);
  std::size_t informed_total = 0;
  std::size_t blind_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const auto informed = astar(g, lengths, s, t, euclidean_heuristic(g, t, rate));
    const auto blind = astar(g, lengths, s, t, [](NodeId) { return 0.0; });
    informed_total += informed.nodes_settled;
    blind_total += blind.nodes_settled;
  }
  EXPECT_LT(informed_total, blind_total);
}

TEST(AStar, RespectsFilter) {
  test::Diamond d;
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  const auto result =
      astar(d.wg.g, d.wg.weights, d.s, d.t, [](NodeId) { return 0.0; }, &filter);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_DOUBLE_EQ(result.path->length, 3.0);
}

TEST(AStar, UnreachableReturnsNoPath) {
  DiGraph g;
  const NodeId a = g.add_node(0, 0);
  const NodeId b = g.add_node(1, 0);
  g.finalize();
  const std::vector<double> w;
  const auto result = astar(g, w, a, b, [](NodeId) { return 0.0; });
  EXPECT_FALSE(result.path.has_value());
}

TEST(AStar, MaxAdmissibleRateProperties) {
  test::Diamond d;
  const double rate = max_admissible_rate(d.wg.g, d.wg.weights);
  // Every edge satisfies w >= rate * euclid.
  for (EdgeId e : d.wg.g.edges()) {
    const double euclid = d.wg.g.node_distance(d.wg.g.edge_from(e), d.wg.g.edge_to(e));
    EXPECT_GE(d.wg.weights[e.value()] + 1e-12, rate * euclid);
  }
  EXPECT_GT(rate, 0.0);
}

}  // namespace
}  // namespace mts
