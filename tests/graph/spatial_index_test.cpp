#include "graph/spatial_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mts {
namespace {

std::vector<IndexedPoint> random_points(std::size_t n, Rng& rng, double extent = 1000.0) {
  std::vector<IndexedPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0, extent), rng.uniform(0, extent),
                      static_cast<std::uint32_t>(i)});
  }
  return points;
}

TEST(PointGrid, NearestMatchesBruteForce) {
  Rng rng(7);
  const auto points = random_points(400, rng);
  PointGrid grid(points, 50.0);
  for (int q = 0; q < 200; ++q) {
    const double x = rng.uniform(-100, 1100);
    const double y = rng.uniform(-100, 1100);
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t best_id = 0;
    for (const auto& p : points) {
      const double d = std::hypot(p.x - x, p.y - y);
      if (d < best) {
        best = d;
        best_id = p.id;
      }
    }
    const auto hit = grid.nearest(x, y);
    ASSERT_TRUE(hit.has_value());
    // Compare by distance (ids may differ on exact ties).
    const auto& chosen = points[*hit];
    EXPECT_NEAR(std::hypot(chosen.x - x, chosen.y - y), best, 1e-9)
        << "query " << q << " id " << *hit << " vs " << best_id;
  }
}

TEST(PointGrid, WithinMatchesBruteForce) {
  Rng rng(9);
  const auto points = random_points(300, rng);
  PointGrid grid(points, 80.0);
  for (int q = 0; q < 50; ++q) {
    const double x = rng.uniform(0, 1000);
    const double y = rng.uniform(0, 1000);
    const double radius = rng.uniform(10, 200);
    auto result = grid.within(x, y, radius);
    std::sort(result.begin(), result.end());
    std::vector<std::uint32_t> expected;
    for (const auto& p : points) {
      if (std::hypot(p.x - x, p.y - y) <= radius) expected.push_back(p.id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(result, expected) << "query " << q;
  }
}

TEST(PointGrid, EmptyIndex) {
  PointGrid grid({}, 10.0);
  EXPECT_FALSE(grid.nearest(0, 0).has_value());
  EXPECT_TRUE(grid.within(0, 0, 100).empty());
}

TEST(PointGrid, SinglePoint) {
  PointGrid grid({{5.0, 5.0, 42}}, 10.0);
  const auto hit = grid.nearest(-1000, -1000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42u);
}

TEST(PointGrid, RejectsBadCellSize) {
  EXPECT_THROW(PointGrid({}, 0.0), PreconditionViolation);
}

TEST(SegmentGrid, NearestMatchesBruteForce) {
  Rng rng(13);
  std::vector<IndexedSegment> segments;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 1000);
    const double y = rng.uniform(0, 1000);
    segments.push_back({x, y, x + rng.uniform(-120, 120), y + rng.uniform(-120, 120), i});
  }
  SegmentGrid grid(segments, 60.0);

  auto brute = [&](double px, double py) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& s : segments) {
      const double dx = s.x2 - s.x1;
      const double dy = s.y2 - s.y1;
      const double len2 = dx * dx + dy * dy;
      double t = 0.0;
      if (len2 > 0) t = std::clamp(((px - s.x1) * dx + (py - s.y1) * dy) / len2, 0.0, 1.0);
      best = std::min(best, std::hypot(px - (s.x1 + t * dx), py - (s.y1 + t * dy)));
    }
    return best;
  };

  for (int q = 0; q < 100; ++q) {
    const double x = rng.uniform(-50, 1050);
    const double y = rng.uniform(-50, 1050);
    const auto hit = grid.nearest(x, y);
    ASSERT_TRUE(hit.has_value());
    EXPECT_NEAR(hit->distance, brute(x, y), 1e-9) << "query " << q;
  }
}

TEST(SegmentGrid, HitReportsProjection) {
  SegmentGrid grid({{0, 0, 10, 0, 7}}, 5.0);
  const auto hit = grid.nearest(5, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 7u);
  EXPECT_NEAR(hit->t, 0.5, 1e-12);
  EXPECT_NEAR(hit->distance, 3.0, 1e-12);
  EXPECT_NEAR(hit->x, 5.0, 1e-12);
  EXPECT_NEAR(hit->y, 0.0, 1e-12);
}

TEST(SegmentGrid, DegenerateSegment) {
  SegmentGrid grid({{3, 4, 3, 4, 1}}, 5.0);
  const auto hit = grid.nearest(0, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 5.0, 1e-12);
}

TEST(SegmentGrid, EmptyIndex) {
  SegmentGrid grid({}, 5.0);
  EXPECT_FALSE(grid.nearest(0, 0).has_value());
}

}  // namespace
}  // namespace mts
