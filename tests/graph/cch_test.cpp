#include "graph/cch.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "graph/dijkstra.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(Cch, UnmaskedDistancesMatchDijkstra) {
  test::Diamond d;
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  const auto topo = CchTopology::build(d.wg.g, ch.ranks());
  CchMetric metric(topo, d.wg.weights);
  EXPECT_DOUBLE_EQ(metric.distance(d.s, d.t), 2.0);
  EXPECT_DOUBLE_EQ(metric.distance(d.s, d.a), 1.0);
  EXPECT_EQ(metric.distance(d.t, d.s), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(metric.distance(d.s, d.s), 0.0);
}

TEST(Cch, RecustomizeTracksMaskAndRestores) {
  test::Diamond d;
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  const auto topo = CchTopology::build(d.wg.g, ch.ranks());
  CchMetric metric(topo, d.wg.weights);

  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  metric.recustomize(&filter);
  const double masked = shortest_distance(d.wg.g, d.wg.weights, d.s, d.t, &filter);
  EXPECT_DOUBLE_EQ(metric.distance(d.s, d.t), masked);

  // Diffing back to the empty mask must restore the original distances.
  metric.recustomize(nullptr);
  EXPECT_DOUBLE_EQ(metric.distance(d.s, d.t), 2.0);
}

TEST(Cch, ParallelEdgesSurviveSelectiveRemoval) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const EdgeId slow_ab = g.add_edge(a, b);
  const EdgeId cheap_ab = g.add_edge(a, b);  // parallel, cheaper
  g.add_edge(b, c);
  g.finalize();
  const std::vector<double> w = {3.0, 1.0, 2.0};
  const auto ch = ContractionHierarchy::build(g, w);
  const auto topo = CchTopology::build(g, ch.ranks());
  CchMetric metric(topo, w);
  EXPECT_DOUBLE_EQ(metric.distance(a, c), 3.0);

  // Removing the cheap copy falls back to the slow one...
  EdgeFilter filter(g.num_edges());
  filter.remove(cheap_ab);
  metric.recustomize(&filter);
  EXPECT_DOUBLE_EQ(metric.distance(a, c), 5.0);

  // ...and removing both parallel edges disconnects the pair.
  filter.remove(slow_ab);
  metric.recustomize(&filter);
  EXPECT_EQ(metric.distance(a, c), kInfiniteDistance);
}

TEST(Cch, BoundsToTargetMatchesMaskedReverseDistances) {
  Rng rng(5);
  auto wg = test::make_random_graph(30, 100, rng);
  const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
  const auto topo = CchTopology::build(wg.g, ch.ranks());
  CchMetric metric(topo, wg.weights);

  EdgeFilter filter(wg.g.num_edges());
  for (int i = 0; i < 8; ++i) {
    filter.remove(EdgeId(static_cast<std::uint32_t>(rng.uniform_index(wg.g.num_edges()))));
  }
  metric.recustomize(&filter);

  const NodeId target(29);
  SearchSpace bounds;
  metric.bounds_to_target(target, bounds);
  for (NodeId n : wg.g.nodes()) {
    const double expected = shortest_distance(wg.g, wg.weights, n, target, &filter);
    const double got = bounds.reached(n) ? bounds.dist(n) : kInfiniteDistance;
    if (expected == kInfiniteDistance) {
      EXPECT_EQ(got, kInfiniteDistance) << "node " << n.value();
    } else {
      EXPECT_NEAR(got, expected, 1e-9 * (1.0 + expected)) << "node " << n.value();
    }
  }
}

TEST(Cch, RepeatedRecustomizationsOnCityNetwork) {
  // The attack-loop shape: one metric object, many candidate masks, each
  // re-customized by diffing against the previous mask.
  const auto network = citygen::generate_city(citygen::City::Boston, 0.2, 19);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto ch = ContractionHierarchy::build(g, weights);
  const auto topo = CchTopology::build(g, ch.ranks());
  CchMetric metric(topo, weights);

  Rng rng(23);
  EdgeFilter filter(g.num_edges());
  for (int round = 0; round < 6; ++round) {
    // Mutate the mask incrementally: drop a few edges, restore a few.
    for (int i = 0; i < 5; ++i) {
      filter.remove(EdgeId(static_cast<std::uint32_t>(rng.uniform_index(g.num_edges()))));
    }
    if (round % 2 == 1) {
      const auto removed = filter.removed_edges();
      filter.restore(removed[rng.uniform_index(removed.size())]);
    }
    metric.recustomize(&filter);
    for (int trial = 0; trial < 4; ++trial) {
      const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
      const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
      const double expected = shortest_distance(g, weights, s, t, &filter);
      const double got = metric.distance(s, t);
      if (expected == kInfiniteDistance) {
        EXPECT_EQ(got, kInfiniteDistance) << "round " << round;
      } else {
        EXPECT_NEAR(got, expected, 1e-9 * (1.0 + expected)) << "round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace mts
