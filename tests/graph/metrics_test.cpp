#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(OrientationOrder, PerfectGridIsOne) {
  std::vector<double> bearings;
  for (int i = 0; i < 100; ++i) {
    bearings.push_back(0.0);
    bearings.push_back(90.0);
    bearings.push_back(180.0);
    bearings.push_back(270.0);
  }
  EXPECT_NEAR(orientation_order(bearings), 1.0, 1e-12);
}

TEST(OrientationOrder, UniformBearingsNearZero) {
  Rng rng(1);
  std::vector<double> bearings;
  for (int i = 0; i < 20000; ++i) bearings.push_back(rng.uniform(0.0, 360.0));
  EXPECT_LT(orientation_order(bearings), 0.01);
}

TEST(OrientationOrder, NegativeBearingsFoldCorrectly) {
  // -90 folds to 0 mod 90, same bin as +90.
  EXPECT_NEAR(orientation_order({-90.0, 90.0, 0.0, 180.0}), 1.0, 1e-12);
}

TEST(OrientationOrder, RejectsTooFewBins) {
  EXPECT_THROW(orientation_order({1.0}, 1), PreconditionViolation);
}

TEST(OrientationOrder, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(orientation_order({}), 0.0);
}

TEST(NetworkMetrics, GridValues) {
  auto wg = test::make_grid(5, 5);
  const auto metrics = compute_network_metrics(wg.g);
  EXPECT_EQ(metrics.num_nodes, 25u);
  EXPECT_EQ(metrics.num_edges, 80u);
  EXPECT_DOUBLE_EQ(metrics.average_degree, 2.0 * 80 / 25);
  EXPECT_NEAR(metrics.orientation_order, 1.0, 1e-9);
  // Interior nodes (3x3 = 9) have 4 distinct neighbors; edge non-corner
  // nodes have 3; corners have 2 (not intersections).
  EXPECT_NEAR(metrics.four_way_share, 9.0 / 21.0, 1e-9);
  EXPECT_NEAR(metrics.mean_segment_length, 1.0, 1e-9);
}

TEST(NetworkMetrics, JitterReducesOrientationOrder) {
  auto grid = test::make_grid(10, 10);
  const double ordered = compute_network_metrics(grid.g).orientation_order;

  // Same topology, heavily jittered positions.
  Rng rng(7);
  DiGraph jittered;
  for (NodeId n : grid.g.nodes()) {
    jittered.add_node(grid.g.x(n) + rng.normal(0.0, 0.35), grid.g.y(n) + rng.normal(0.0, 0.35));
  }
  for (EdgeId e : grid.g.edges()) {
    jittered.add_edge(grid.g.edge_from(e), grid.g.edge_to(e));
  }
  jittered.finalize();
  const double disordered = compute_network_metrics(jittered).orientation_order;
  EXPECT_LT(disordered, ordered - 0.2);
}

TEST(NetworkMetrics, ZeroLengthEdgesSkippedInBearings) {
  DiGraph g;
  const NodeId a = g.add_node(0, 0);
  const NodeId b = g.add_node(0, 0);  // coincident
  g.add_edge(a, b);
  g.finalize();
  const auto metrics = compute_network_metrics(g);  // must not NaN
  EXPECT_EQ(metrics.num_edges, 1u);
  EXPECT_DOUBLE_EQ(metrics.orientation_order, 0.0);
}

}  // namespace
}  // namespace mts
