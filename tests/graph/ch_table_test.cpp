#include "graph/ch_table.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "graph/dijkstra.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(ChTableQuery, DiamondPairs) {
  test::Diamond d;
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  ChTableQuery table(ch);
  const std::vector<NodeId> sources = {d.s, d.t};
  const std::vector<NodeId> targets = {d.t, d.a, d.s};
  const auto values = table.table(sources, targets);
  ASSERT_EQ(values.size(), 6u);
  EXPECT_DOUBLE_EQ(values[0], 2.0);                // s -> t
  EXPECT_DOUBLE_EQ(values[1], 1.0);                // s -> a
  EXPECT_DOUBLE_EQ(values[2], 0.0);                // s -> s, self pair
  EXPECT_EQ(values[3], 0.0);                       // t -> t
  EXPECT_EQ(values[4], kInfiniteDistance);         // t -> a, directed
  EXPECT_EQ(values[5], kInfiniteDistance);         // t -> s
}

TEST(ChTableQuery, MatchesPairwiseDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(35, 120, rng);
    const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
    ChTableQuery table(ch);
    std::vector<NodeId> sources;
    std::vector<NodeId> targets;
    for (int i = 0; i < 5; ++i) {
      sources.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(35)));
      targets.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(35)));
    }
    const auto values = table.table(sources, targets);
    ASSERT_EQ(values.size(), sources.size() * targets.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      for (std::size_t j = 0; j < targets.size(); ++j) {
        const double expected =
            shortest_distance(wg.g, wg.weights, sources[i], targets[j]);
        const double got = values[i * targets.size() + j];
        if (expected == kInfiniteDistance) {
          EXPECT_EQ(got, kInfiniteDistance) << "seed " << seed;
        } else {
          EXPECT_NEAR(got, expected, 1e-9 * (1.0 + expected))
              << "seed " << seed << " pair (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(ChTableQuery, ReusableAcrossCallsWithDifferentShapes) {
  // The bucket scratch is cleared between calls; a second call with
  // different dimensions must not see entries deposited by the first.
  Rng rng(9);
  auto wg = test::make_random_graph(30, 90, rng);
  const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
  ChTableQuery table(ch);

  const std::vector<NodeId> wide = {NodeId(0), NodeId(5), NodeId(11), NodeId(29)};
  static_cast<void>(table.table(wide, wide));

  const std::vector<NodeId> sources = {NodeId(3)};
  const std::vector<NodeId> targets = {NodeId(27)};
  const auto values = table.table(sources, targets);
  ASSERT_EQ(values.size(), 1u);
  const double expected = shortest_distance(wg.g, wg.weights, NodeId(3), NodeId(27));
  if (expected == kInfiniteDistance) {
    EXPECT_EQ(values[0], kInfiniteDistance);
  } else {
    EXPECT_NEAR(values[0], expected, 1e-9 * (1.0 + expected));
  }
}

TEST(ChTableQuery, TraceAccumulatesWork) {
  test::Diamond d;
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  ChTableQuery table(ch);
  RequestTrace trace;
  const std::vector<NodeId> sources = {d.s};
  const std::vector<NodeId> targets = {d.t};
  static_cast<void>(table.table(sources, targets, &trace));
  EXPECT_GT(trace.ch_nodes_settled, 0u);
}

TEST(ChTableQuery, CityNetworkAgainstFullDijkstra) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.2, 21);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto ch = ContractionHierarchy::build(g, weights);
  ChTableQuery table(ch);

  Rng rng(4);
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  for (int i = 0; i < 6; ++i) {
    sources.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    targets.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
  }
  const auto values = table.table(sources, targets);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    DijkstraOptions options;
    const auto tree = dijkstra(g, weights, sources[i], options);
    for (std::size_t j = 0; j < targets.size(); ++j) {
      const double expected = tree.reached(targets[j])
                                  ? tree.dist[targets[j].value()]
                                  : kInfiniteDistance;
      const double got = values[i * targets.size() + j];
      if (expected == kInfiniteDistance) {
        EXPECT_EQ(got, kInfiniteDistance);
      } else {
        EXPECT_NEAR(got, expected, 1e-9 * (1.0 + expected)) << i << "," << j;
      }
    }
  }
}

}  // namespace
}  // namespace mts
