// Randomized equivalence fuzz for the three CH-backed query paths against
// filtered Dijkstra, the reference implementation (DESIGN.md §14).  The
// fuzzed graphs deliberately include what city networks rarely produce:
// disconnected components, parallel edges with distinct weights, and
// zero-weight edges.
#include <gtest/gtest.h>

#include "graph/cch.hpp"
#include "graph/ch_table.hpp"
#include "graph/contraction_hierarchy.hpp"
#include "graph/dijkstra.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

/// A graph with no connectivity guarantee: `nodes` isolated-by-default
/// nodes, random edges (self loops skipped), ~1/8 of them duplicated as
/// parallel twins with a different weight, ~1/10 of the weights zero.
test::WeightedGraph make_fuzz_graph(std::size_t nodes, std::size_t edges, Rng& rng) {
  test::WeightedGraph wg;
  for (std::size_t i = 0; i < nodes; ++i) wg.g.add_node();
  for (std::size_t i = 0; i < edges; ++i) {
    const NodeId u(static_cast<std::uint32_t>(rng.uniform_index(nodes)));
    const NodeId v(static_cast<std::uint32_t>(rng.uniform_index(nodes)));
    if (u == v) continue;
    const double w = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.5, 4.0);
    wg.edge(u, v, w);
    if (rng.uniform() < 0.125) wg.edge(u, v, rng.uniform(0.5, 4.0));
  }
  wg.g.finalize();
  return wg;
}

void expect_distance_eq(double got, double expected, const std::string& context) {
  if (expected == kInfiniteDistance) {
    EXPECT_EQ(got, kInfiniteDistance) << context;
  } else {
    EXPECT_NEAR(got, expected, 1e-9 * (1.0 + expected)) << context;
  }
}

TEST(ChEquivalence, QueryMatchesDijkstraOnFuzzedGraphs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    // Sparse graphs keep many node pairs disconnected.
    const auto wg = make_fuzz_graph(25, 12 + rng.uniform_index(50), rng);
    const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
    ChSearchSpace ws;
    for (int trial = 0; trial < 20; ++trial) {
      const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(25)));
      const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(25)));
      const double expected = shortest_distance(wg.g, wg.weights, s, t);
      const auto result = ch.query(s, t, ws);
      const std::string context =
          "seed " + std::to_string(seed) + " " + std::to_string(s.value()) + "->" +
          std::to_string(t.value());
      expect_distance_eq(result.distance, expected, context);
      if (expected < kInfiniteDistance) {
        ASSERT_TRUE(result.path.has_value()) << context;
        expect_distance_eq(path_length(result.path->edges, wg.weights), expected, context);
      } else {
        EXPECT_FALSE(result.path.has_value()) << context;
      }
    }
  }
}

TEST(ChEquivalence, TableMatchesDijkstraOnFuzzedGraphs) {
  for (std::uint64_t seed = 20; seed <= 28; ++seed) {
    Rng rng(seed);
    const auto wg = make_fuzz_graph(30, 20 + rng.uniform_index(70), rng);
    const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
    ChTableQuery table(ch);
    std::vector<NodeId> sources;
    std::vector<NodeId> targets;
    for (int i = 0; i < 4; ++i) {
      sources.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(30)));
      targets.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(30)));
    }
    const auto values = table.table(sources, targets);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      for (std::size_t j = 0; j < targets.size(); ++j) {
        const double expected =
            shortest_distance(wg.g, wg.weights, sources[i], targets[j]);
        expect_distance_eq(values[i * targets.size() + j], expected,
                           "seed " + std::to_string(seed) + " cell " + std::to_string(i) +
                               "," + std::to_string(j));
      }
    }
  }
}

TEST(ChEquivalence, RecustomizedCchMatchesFilteredDijkstraOnFuzzedGraphs) {
  for (std::uint64_t seed = 40; seed <= 47; ++seed) {
    Rng rng(seed);
    const auto wg = make_fuzz_graph(25, 30 + rng.uniform_index(60), rng);
    if (wg.g.num_edges() == 0) continue;
    const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
    const auto topo = CchTopology::build(wg.g, ch.ranks());
    CchMetric metric(topo, wg.weights);

    // A sequence of evolving masks on one metric object, so later rounds
    // exercise the mask-diff path, not just first customization.
    EdgeFilter filter(wg.g.num_edges());
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 4; ++i) {
        filter.remove(
            EdgeId(static_cast<std::uint32_t>(rng.uniform_index(wg.g.num_edges()))));
      }
      metric.recustomize(&filter);
      for (int trial = 0; trial < 8; ++trial) {
        const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(25)));
        const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(25)));
        const double expected = shortest_distance(wg.g, wg.weights, s, t, &filter);
        expect_distance_eq(metric.distance(s, t), expected,
                           "seed " + std::to_string(seed) + " round " +
                               std::to_string(round) + " " + std::to_string(s.value()) +
                               "->" + std::to_string(t.value()));
      }
    }
  }
}

TEST(ChEquivalence, PhastBoundsMatchReverseDijkstraOnFuzzedGraphs) {
  for (std::uint64_t seed = 60; seed <= 65; ++seed) {
    Rng rng(seed);
    const auto wg = make_fuzz_graph(25, 25 + rng.uniform_index(60), rng);
    const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
    ChSearchSpace ws;
    SearchSpace bounds;
    const NodeId target(static_cast<std::uint32_t>(rng.uniform_index(25)));
    ch.bounds_to_target(target, ws, bounds);
    for (NodeId n : wg.g.nodes()) {
      const double expected = shortest_distance(wg.g, wg.weights, n, target);
      const double got = bounds.reached(n) ? bounds.dist(n) : kInfiniteDistance;
      expect_distance_eq(got, expected,
                         "seed " + std::to_string(seed) + " node " +
                             std::to_string(n.value()));
    }
  }
}

}  // namespace
}  // namespace mts
