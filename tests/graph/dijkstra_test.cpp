#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "graph/bellman_ford.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(Dijkstra, DiamondShortest) {
  test::Diamond d;
  const auto path = shortest_path(d.wg.g, d.wg.weights, d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->length, 2.0);
  EXPECT_EQ(path->edges, (std::vector<EdgeId>{d.sa, d.at}));
}

TEST(Dijkstra, FilterForcesDetour) {
  test::Diamond d;
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  const auto path = shortest_path(d.wg.g, d.wg.weights, d.s, d.t, &filter);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->length, 3.0);
  EXPECT_EQ(path->edges, (std::vector<EdgeId>{d.sb, d.bt}));
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  test::Diamond d;
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  filter.remove(d.sb);
  filter.remove(d.st);
  EXPECT_FALSE(shortest_path(d.wg.g, d.wg.weights, d.s, d.t, &filter).has_value());
  EXPECT_EQ(shortest_distance(d.wg.g, d.wg.weights, d.s, d.t, &filter), kInfiniteDistance);
}

TEST(Dijkstra, SourceEqualsTarget) {
  test::Diamond d;
  const auto tree = dijkstra(d.wg.g, d.wg.weights, d.s);
  EXPECT_DOUBLE_EQ(tree.dist[d.s.value()], 0.0);
  const auto path = extract_path(d.wg.g, tree, d.s, d.s);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(Dijkstra, BannedNodesAreAvoided) {
  test::Diamond d;
  std::vector<std::uint8_t> banned(d.wg.g.num_nodes(), 0);
  banned[d.a.value()] = 1;
  DijkstraOptions options;
  options.target = d.t;
  options.banned_nodes = &banned;
  const auto tree = dijkstra(d.wg.g, d.wg.weights, d.s, options);
  const auto path = extract_path(d.wg.g, tree, d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->length, 3.0);
}

TEST(Dijkstra, BannedSourceReachesNothing) {
  test::Diamond d;
  std::vector<std::uint8_t> banned(d.wg.g.num_nodes(), 0);
  banned[d.s.value()] = 1;
  DijkstraOptions options;
  options.banned_nodes = &banned;
  const auto tree = dijkstra(d.wg.g, d.wg.weights, d.s, options);
  EXPECT_FALSE(tree.reached(d.t));
  EXPECT_FALSE(tree.reached(d.s));
}

TEST(Dijkstra, RejectsNegativeWeight) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b);
  g.finalize();
  const std::vector<double> w = {-1.0};
  EXPECT_THROW(dijkstra(g, w, a), PreconditionViolation);
}

TEST(Dijkstra, RejectsWeightSizeMismatch) {
  test::Diamond d;
  const std::vector<double> w = {1.0};
  EXPECT_THROW(dijkstra(d.wg.g, w, d.s), PreconditionViolation);
}

TEST(Dijkstra, ZeroWeightEdgesHandled) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(shortest_distance(g, w, a, c), 0.0);
}

TEST(Dijkstra, MatchesBellmanFordOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(60, 240, rng);
    const NodeId s(0);
    const auto dij = dijkstra(wg.g, wg.weights, s);
    const auto bf = bellman_ford(wg.g, wg.weights, s);
    for (NodeId n : wg.g.nodes()) {
      EXPECT_NEAR(dij.dist[n.value()], bf.dist[n.value()], 1e-9)
          << "seed " << seed << " node " << n.value();
    }
  }
}

TEST(Dijkstra, MatchesBellmanFordUnderFilter) {
  Rng rng(99);
  auto wg = test::make_random_graph(40, 160, rng);
  EdgeFilter filter(wg.g.num_edges());
  for (EdgeId e : wg.g.edges()) {
    if (rng.chance(0.3)) filter.remove(e);
  }
  const NodeId s(0);
  const auto dij = dijkstra(wg.g, wg.weights, s, {.filter = &filter});
  const auto bf = bellman_ford(wg.g, wg.weights, s, &filter);
  for (NodeId n : wg.g.nodes()) {
    if (bf.dist[n.value()] == kInfiniteDistance) {
      EXPECT_EQ(dij.dist[n.value()], kInfiniteDistance);
    } else {
      EXPECT_NEAR(dij.dist[n.value()], bf.dist[n.value()], 1e-9);
    }
  }
}

TEST(Dijkstra, EarlyExitMatchesFullRun) {
  Rng rng(5);
  auto wg = test::make_random_graph(80, 320, rng);
  const NodeId s(0);
  const NodeId t(79);
  const auto full = dijkstra(wg.g, wg.weights, s);
  EXPECT_NEAR(shortest_distance(wg.g, wg.weights, s, t), full.dist[t.value()], 1e-12);
}

TEST(Dijkstra, ExtractedPathIsConsistent) {
  Rng rng(8);
  auto wg = test::make_random_graph(50, 200, rng);
  const NodeId s(0);
  const NodeId t(49);
  const auto path = shortest_path(wg.g, wg.weights, s, t);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(is_simple_path(wg.g, *path, s, t));
  EXPECT_NEAR(path_length(path->edges, wg.weights), path->length, 1e-9);
}

TEST(EdgeFilter, RemoveRestoreCount) {
  EdgeFilter filter(5);
  EXPECT_EQ(filter.num_removed(), 0u);
  filter.remove(EdgeId(2));
  filter.remove(EdgeId(2));  // idempotent
  EXPECT_EQ(filter.num_removed(), 1u);
  EXPECT_TRUE(filter.is_removed(EdgeId(2)));
  filter.restore(EdgeId(2));
  EXPECT_EQ(filter.num_removed(), 0u);
  filter.remove(EdgeId(1));
  filter.remove(EdgeId(4));
  EXPECT_EQ(filter.removed_edges(), (std::vector<EdgeId>{EdgeId(1), EdgeId(4)}));
  filter.clear();
  EXPECT_EQ(filter.num_removed(), 0u);
}

}  // namespace
}  // namespace mts
