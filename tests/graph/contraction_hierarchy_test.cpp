#include "graph/contraction_hierarchy.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "graph/dijkstra.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(ContractionHierarchy, DiamondDistances) {
  test::Diamond d;
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  EXPECT_DOUBLE_EQ(ch.distance(d.s, d.t), 2.0);
  EXPECT_DOUBLE_EQ(ch.distance(d.s, d.a), 1.0);
  EXPECT_DOUBLE_EQ(ch.distance(d.t, d.s), kInfiniteDistance);  // directed!
}

TEST(ContractionHierarchy, DiamondPathUnpacksToOriginalEdges) {
  test::Diamond d;
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  const auto result = ch.query(d.s, d.t);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_EQ(result.path->edges, (std::vector<EdgeId>{d.sa, d.at}));
  EXPECT_DOUBLE_EQ(result.distance, 2.0);
}

TEST(ContractionHierarchy, SourceEqualsTarget) {
  test::Diamond d;
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  const auto result = ch.query(d.s, d.s);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_TRUE(result.path->empty());
  EXPECT_DOUBLE_EQ(result.distance, 0.0);
}

TEST(ContractionHierarchy, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(40, 160, rng);
    const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
    for (int trial = 0; trial < 15; ++trial) {
      const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(40)));
      const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(40)));
      const double expected = shortest_distance(wg.g, wg.weights, s, t);
      const auto result = ch.query(s, t);
      if (expected == kInfiniteDistance) {
        EXPECT_EQ(result.distance, kInfiniteDistance) << "seed " << seed;
        EXPECT_FALSE(result.path.has_value());
        continue;
      }
      ASSERT_TRUE(result.path.has_value()) << "seed " << seed << " trial " << trial;
      EXPECT_NEAR(result.distance, expected, 1e-9) << "seed " << seed;
      // The unpacked path must be a real path of matching length.
      EXPECT_TRUE(is_simple_path(wg.g, *result.path, s, t) ||
                  result.path->edges.empty())
          << "seed " << seed;
      EXPECT_NEAR(path_length(result.path->edges, wg.weights), expected, 1e-9);
    }
  }
}

TEST(ContractionHierarchy, MatchesDijkstraOnCityNetwork) {
  const auto network = citygen::generate_city(citygen::City::SanFrancisco, 0.25, 13);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto ch = ContractionHierarchy::build(g, weights);

  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const double expected = shortest_distance(g, weights, s, t);
    EXPECT_NEAR(ch.distance(s, t), expected, 1e-9 * (1.0 + expected)) << "trial " << trial;
  }
}

TEST(ContractionHierarchy, QuerySettlesFewerNodesThanDijkstra) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.3, 17);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto ch = ContractionHierarchy::build(g, weights);

  Rng rng(3);
  std::size_t ch_settled = 0;
  std::size_t dijkstra_settled = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    ch_settled += ch.query(s, t).nodes_settled;
    // Dijkstra settles every node closer than t.
    DijkstraOptions options;
    options.target = t;
    const auto tree = dijkstra(g, weights, s, options);
    for (NodeId n : g.nodes()) {
      if (tree.reached(n) && tree.dist[n.value()] <= tree.dist[t.value()]) {
        ++dijkstra_settled;
      }
    }
  }
  EXPECT_LT(ch_settled * 2, dijkstra_settled);  // at least 2x fewer
}

TEST(ContractionHierarchy, ShortcutsAreReported) {
  // A long chain through low-degree nodes must create shortcuts.
  auto wg = test::make_grid(5, 5, 1.0, 1.17);
  const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
  EXPECT_GT(ch.num_shortcuts(), 0u);
  // Ranks are a permutation of 0..n-1.
  std::vector<std::uint8_t> seen(wg.g.num_nodes(), 0);
  for (NodeId n : wg.g.nodes()) {
    ASSERT_LT(ch.rank(n), wg.g.num_nodes());
    EXPECT_FALSE(seen[ch.rank(n)]);
    seen[ch.rank(n)] = 1;
  }
}

TEST(ContractionHierarchy, ZeroWeightAndParallelEdges) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  const EdgeId cheap_ab = g.add_edge(a, b);  // parallel, cheaper
  g.add_edge(b, c);
  g.add_edge(a, a);  // self loop, ignored
  g.finalize();
  const std::vector<double> w = {3.0, 0.0, 2.0, 1.0};
  const auto ch = ContractionHierarchy::build(g, w);
  const auto result = ch.query(a, c);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_DOUBLE_EQ(result.distance, 2.0);
  EXPECT_EQ(result.path->edges.front(), cheap_ab);
}

TEST(ContractionHierarchy, RejectsBadInput) {
  test::Diamond d;
  std::vector<double> bad = d.wg.weights;
  bad[0] = -1.0;
  EXPECT_THROW(ContractionHierarchy::build(d.wg.g, bad), PreconditionViolation);
  const auto ch = ContractionHierarchy::build(d.wg.g, d.wg.weights);
  EXPECT_THROW(static_cast<void>(ch.distance(NodeId(99), d.s)), PreconditionViolation);
}

}  // namespace
}  // namespace mts
