#include "graph/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace mts {
namespace {

/// Bidirectional cycle: perfectly symmetric, so all centralities equal and
/// the dominant eigenvalue of the adjacency matrix is 2.
TEST(Eigen, CycleIsUniform) {
  DiGraph g;
  constexpr int n = 8;
  for (int i = 0; i < n; ++i) g.add_node();
  for (int i = 0; i < n; ++i) {
    g.add_edge(NodeId(i), NodeId((i + 1) % n));
    g.add_edge(NodeId((i + 1) % n), NodeId(i));
  }
  g.finalize();

  const auto result = eigenvector_centrality(g);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 2.0, 0.05);
  for (int i = 1; i < n; ++i) {
    EXPECT_NEAR(result.centrality[0], result.centrality[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(Eigen, StarCenterDominates) {
  DiGraph g;
  const NodeId center = g.add_node();
  for (int i = 0; i < 6; ++i) {
    const NodeId leaf = g.add_node();
    g.add_edge(center, leaf);
    g.add_edge(leaf, center);
  }
  g.finalize();
  const auto result = eigenvector_centrality(g);
  for (std::size_t i = 1; i < g.num_nodes(); ++i) {
    EXPECT_GT(result.centrality[center.value()], result.centrality[i] * 1.5);
  }
}

TEST(Eigen, CentralityIsNormalized) {
  auto wg = test::make_grid(4, 4);
  const auto result = eigenvector_centrality(wg.g);
  double norm = 0.0;
  for (double v : result.centrality) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-6);
  for (double v : result.centrality) EXPECT_GE(v, 0.0);
}

TEST(Eigen, EmptyGraph) {
  DiGraph g;
  g.finalize();
  const auto result = eigenvector_centrality(g);
  EXPECT_TRUE(result.centrality.empty());
}

TEST(Eigen, EdgeScoresAreEndpointProducts) {
  test::Diamond d;
  const auto result = eigenvector_centrality(d.wg.g);
  const auto scores = edge_eigen_scores(d.wg.g, result);
  ASSERT_EQ(scores.size(), d.wg.g.num_edges());
  EXPECT_NEAR(scores[d.sa.value()],
              result.centrality[d.s.value()] * result.centrality[d.a.value()], 1e-12);
}

TEST(Eigen, FilterChangesScores) {
  auto wg = test::make_grid(4, 4);
  EdgeFilter filter(wg.g.num_edges());
  // Remove all edges touching node 5 -> its centrality should collapse
  // toward the damping floor.
  for (EdgeId e : wg.g.out_edges(NodeId(5))) filter.remove(e);
  for (EdgeId e : wg.g.in_edges(NodeId(5))) filter.remove(e);
  EigenOptions options;
  options.filter = &filter;
  const auto filtered = eigenvector_centrality(wg.g, options);
  const auto baseline = eigenvector_centrality(wg.g);
  EXPECT_LT(filtered.centrality[5], baseline.centrality[5] * 0.5);
}

TEST(Eigen, GridCenterBeatsCorner) {
  auto wg = test::make_grid(5, 5);
  const auto result = eigenvector_centrality(wg.g);
  EXPECT_GT(result.centrality[12], result.centrality[0]);
}

}  // namespace
}  // namespace mts
