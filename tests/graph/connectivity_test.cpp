#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mts {
namespace {

TEST(Reachability, SimpleChain) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  EXPECT_TRUE(is_reachable(g, a, c));
  EXPECT_FALSE(is_reachable(g, c, a));
}

TEST(Reachability, FilterBlocksPath) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b);
  g.finalize();
  EdgeFilter filter(1);
  filter.remove(e);
  EXPECT_FALSE(is_reachable(g, a, b, &filter));
}

TEST(Scc, TwoCyclesOneBridge) {
  DiGraph g;
  // Cycle {0,1,2} -> bridge -> cycle {3,4}.
  for (int i = 0; i < 5; ++i) g.add_node();
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(2));
  g.add_edge(NodeId(2), NodeId(0));
  g.add_edge(NodeId(2), NodeId(3));
  g.add_edge(NodeId(3), NodeId(4));
  g.add_edge(NodeId(4), NodeId(3));
  g.finalize();

  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);

  const auto sizes = scc.sizes();
  EXPECT_EQ(sizes[scc.largest()], 3u);
}

TEST(Scc, DagIsAllSingletons) {
  DiGraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(2));
  g.add_edge(NodeId(0), NodeId(3));
  g.finalize();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(Scc, TwoWayGridIsOneComponent) {
  auto wg = test::make_grid(6, 6);
  const auto scc = strongly_connected_components(wg.g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(Scc, FilterSplitsComponent) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId ab = g.add_edge(a, b);
  g.add_edge(b, a);
  g.finalize();
  EXPECT_EQ(strongly_connected_components(g).num_components, 1u);
  EdgeFilter filter(2);
  filter.remove(ab);
  EXPECT_EQ(strongly_connected_components(g, &filter).num_components, 2u);
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  DiGraph g;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) g.add_node();
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge(NodeId(static_cast<std::uint32_t>(i)), NodeId(static_cast<std::uint32_t>(i + 1)));
  }
  g.finalize();
  const auto scc = strongly_connected_components(g);  // iterative: must not crash
  EXPECT_EQ(scc.num_components, static_cast<std::size_t>(n));
}

TEST(Scc, SelfLoopSingleNode) {
  DiGraph g;
  const NodeId a = g.add_node();
  g.add_edge(a, a);
  g.finalize();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1u);
}

}  // namespace
}  // namespace mts
