// check_invariants() validators: structurally sound objects pass, every
// corruption category is named in the thrown InvariantViolation.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "graph/digraph.hpp"
#include "graph/dijkstra.hpp"
#include "graph/path.hpp"
#include "graph/yen.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

/// Asserts `fn` throws InvariantViolation mentioning `fragment`.
template <typename Fn>
void expect_violation(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    ADD_FAILURE() << "expected InvariantViolation containing \"" << fragment << "\"";
  } catch (const InvariantViolation& error) {
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos) << error.what();
  }
}

TEST(DiGraphInvariants, EmptyAndUnfinalizedGraphsPass) {
  DiGraph empty;
  EXPECT_NO_THROW(empty.check_invariants());

  DiGraph unfinalized;
  unfinalized.add_node(0, 0);
  unfinalized.add_node(1, 1);
  unfinalized.add_edge(NodeId(0), NodeId(1));
  EXPECT_NO_THROW(unfinalized.check_invariants());
}

TEST(DiGraphInvariants, CanonicalGraphsPass) {
  test::Diamond diamond;
  EXPECT_NO_THROW(diamond.wg.g.check_invariants());

  const auto grid = test::make_grid(5, 7);
  EXPECT_NO_THROW(grid.g.check_invariants());

  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const auto random = test::make_random_graph(30, 90, rng);
    EXPECT_NO_THROW(random.g.check_invariants());
  }
}

TEST(DiGraphInvariants, GeneratedCityPasses) {
  const auto network = citygen::generate_city(citygen::City::Boston, 0.15, 3);
  EXPECT_NO_THROW(network.graph().check_invariants());
}

TEST(DiGraphInvariants, SelfLoopsAndParallelEdgesPass) {
  DiGraph g;
  g.add_node(0, 0);
  g.add_node(1, 0);
  g.add_edge(NodeId(0), NodeId(0));  // self-loop
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(0), NodeId(1));  // parallel
  g.finalize();
  EXPECT_NO_THROW(g.check_invariants());
}

TEST(DiGraphInvariants, NonFiniteCoordinatesAreRejected) {
  DiGraph g;
  g.add_node(0, 0);
  g.set_position(NodeId(0), std::numeric_limits<double>::quiet_NaN(), 0.0);
  expect_violation([&] { g.check_invariants(); }, "non-finite coordinates");
}

TEST(PathInvariants, ValidPathsPassWithAndWithoutWeights) {
  test::Diamond d;
  const auto path = shortest_path(d.wg.g, d.wg.weights, d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_NO_THROW(path->check_invariants(d.wg.g));
  EXPECT_NO_THROW(path->check_invariants(d.wg.g, d.wg.weights));

  const Path empty;
  EXPECT_NO_THROW(empty.check_invariants(d.wg.g));
}

TEST(PathInvariants, YenOutputPassesAcrossRandomGraphs) {
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    const auto wg = test::make_random_graph(20, 60, rng);
    const auto ranked =
        yen_ksp(wg.g, wg.weights, NodeId(0),
                NodeId(static_cast<std::uint32_t>(wg.g.num_nodes() - 1)), 8);
    for (const auto& p : ranked) EXPECT_NO_THROW(p.check_invariants(wg.g, wg.weights));
  }
}

TEST(PathInvariants, DiscontiguousEdgesAreRejected) {
  test::Diamond d;
  Path broken;
  broken.edges = {d.sa, d.bt};  // a->t missing: sa ends at a, bt starts at b
  broken.length = 2.5;
  expect_violation([&] { broken.check_invariants(d.wg.g); }, "discontiguous");
}

TEST(PathInvariants, OutOfRangeEdgeIsRejected) {
  test::Diamond d;
  Path broken;
  broken.edges = {EdgeId(99)};
  expect_violation([&] { broken.check_invariants(d.wg.g); }, "out of range");
}

TEST(PathInvariants, LengthMismatchIsRejected) {
  test::Diamond d;
  Path stale;
  stale.edges = {d.sa, d.at};
  stale.length = 7.0;  // true length is 2.0
  EXPECT_NO_THROW(stale.check_invariants(d.wg.g));  // no weights: length unchecked
  expect_violation([&] { stale.check_invariants(d.wg.g, d.wg.weights); }, "disagrees");
}

TEST(PathInvariants, NonFiniteLengthIsRejected) {
  test::Diamond d;
  Path broken;
  broken.edges = {d.st};
  broken.length = std::numeric_limits<double>::infinity();
  expect_violation([&] { broken.check_invariants(d.wg.g); }, "not finite");
}

}  // namespace
}  // namespace mts
