#include "graph/turn_expansion.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

/// + junction centered at node c with four arms (E, N, W, S), two-way.
struct Cross {
  test::WeightedGraph wg;
  NodeId c, e, n, w, s;
  EdgeId ce, ec, cn, nc, cw, wc, cs, sc;

  Cross() {
    c = wg.g.add_node(0, 0);
    e = wg.g.add_node(1, 0);
    n = wg.g.add_node(0, 1);
    w = wg.g.add_node(-1, 0);
    s = wg.g.add_node(0, -1);
    ce = wg.edge(c, e, 1.0);
    ec = wg.edge(e, c, 1.0);
    cn = wg.edge(c, n, 1.0);
    nc = wg.edge(n, c, 1.0);
    cw = wg.edge(c, w, 1.0);
    wc = wg.edge(w, c, 1.0);
    cs = wg.edge(c, s, 1.0);
    sc = wg.edge(s, c, 1.0);
    wg.g.finalize();
  }
};

TEST(ClassifyTurn, CrossJunctionKinds) {
  Cross x;
  // Driving west->center then center->east: straight.
  EXPECT_EQ(classify_turn(x.wg.g, x.wc, x.ce), TurnKind::Straight);
  // West->center then center->north: left (y-up plane).
  EXPECT_EQ(classify_turn(x.wg.g, x.wc, x.cn), TurnKind::Left);
  // West->center then center->south: right.
  EXPECT_EQ(classify_turn(x.wg.g, x.wc, x.cs), TurnKind::Right);
  // West->center then center->west: U-turn.
  EXPECT_EQ(classify_turn(x.wg.g, x.wc, x.cw), TurnKind::UTurn);
}

TEST(ClassifyTurn, RejectsDisconnectedEdges) {
  Cross x;
  EXPECT_THROW(classify_turn(x.wg.g, x.ce, x.cn), PreconditionViolation);
}

TEST(TurnAwareRouter, ZeroPolicyMatchesDijkstra) {
  Rng rng(21);
  auto wg = test::make_random_graph(40, 160, rng);
  const TurnPenaltyFn free_policy = [](EdgeId, EdgeId) { return std::optional<double>(0.0); };
  TurnAwareRouter router(wg.g, wg.weights, free_policy);
  for (int trial = 0; trial < 12; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(40)));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(40)));
    const auto expected = shortest_path(wg.g, wg.weights, s, t);
    const auto actual = router.shortest_path(s, t);
    ASSERT_EQ(actual.has_value(), expected.has_value()) << "trial " << trial;
    if (expected) {
      EXPECT_NEAR(actual->length, expected->length, 1e-9);
    }
  }
}

TEST(TurnAwareRouter, StraightThroughAllowed) {
  Cross x;
  TurnAwareRouter router(x.wg.g, x.wg.weights, standard_turn_policy(x.wg.g, 0.0));
  const auto through = router.shortest_path(x.w, x.e);
  ASSERT_TRUE(through.has_value());
  EXPECT_DOUBLE_EQ(through->length, 2.0);
  EXPECT_EQ(through->edges, (std::vector<EdgeId>{x.wc, x.ce}));
}

TEST(TurnAwareRouter, PolicyCanMakePairsUnroutable) {
  // Forbid going straight (and U-turns): from w the only continuations at
  // the junction are the dead-end arms n/s, whose return legs are U-turns
  // — e becomes unreachable even though an unrestricted route exists.
  Cross x;
  const TurnPenaltyFn no_straight = [&](EdgeId in, EdgeId out) -> std::optional<double> {
    const TurnKind kind = classify_turn(x.wg.g, in, out);
    if (kind == TurnKind::Straight || kind == TurnKind::UTurn) return std::nullopt;
    return 0.0;
  };
  TurnAwareRouter router(x.wg.g, x.wg.weights, no_straight);
  EXPECT_TRUE(shortest_path(x.wg.g, x.wg.weights, x.w, x.e).has_value());
  EXPECT_FALSE(router.shortest_path(x.w, x.e).has_value());
  // Turning movements stay routable.
  EXPECT_TRUE(router.shortest_path(x.w, x.n).has_value());
}

TEST(TurnAwareRouter, LeftPenaltyChangesRouteChoice) {
  // 2x2 block: two routes from SW to NE, one with a left turn first, one
  // with a right... on a grid both staircases have one left; make one
  // route require 2 lefts by pricing.
  Cross x;
  const auto free_route = TurnAwareRouter(x.wg.g, x.wg.weights,
                                          standard_turn_policy(x.wg.g, 0.0))
                              .shortest_path(x.w, x.n);
  ASSERT_TRUE(free_route.has_value());
  EXPECT_DOUBLE_EQ(free_route->length, 2.0);  // w->c->n is a left turn, free

  const auto taxed = TurnAwareRouter(x.wg.g, x.wg.weights,
                                     standard_turn_policy(x.wg.g, 5.0))
                         .shortest_path(x.w, x.n);
  ASSERT_TRUE(taxed.has_value());
  // No left-free alternative exists; the penalty lands on the length.
  EXPECT_DOUBLE_EQ(taxed->length, 7.0);
}

TEST(TurnAwareRouter, SourceEqualsTarget) {
  Cross x;
  const auto policy = standard_turn_policy(x.wg.g);
  TurnAwareRouter router(x.wg.g, x.wg.weights, policy);
  const auto path = router.shortest_path(x.c, x.c);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->edges.empty());
}

TEST(TurnAwareRouter, CityNetworkPathsAreValidAndNoWorse) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.15, 31);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  TurnAwareRouter router(g, weights, standard_turn_policy(g, 6.0));

  Rng rng(4);
  int routed = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const auto unrestricted = shortest_path(g, weights, s, t);
    const auto restricted = router.shortest_path(s, t);
    if (!unrestricted || !restricted) continue;
    ++routed;
    // Turn-aware routes may legitimately revisit a node (loop around a
    // block to avoid a banned movement), so check connectivity and
    // endpoints rather than node-simplicity.
    ASSERT_FALSE(restricted->edges.empty());
    EXPECT_EQ(g.edge_from(restricted->edges.front()), s);
    EXPECT_EQ(g.edge_to(restricted->edges.back()), t);
    for (std::size_t i = 0; i + 1 < restricted->edges.size(); ++i) {
      EXPECT_EQ(g.edge_to(restricted->edges[i]), g.edge_from(restricted->edges[i + 1]));
    }
    // Penalties only add cost.
    EXPECT_GE(restricted->length + 1e-9, unrestricted->length);
  }
  EXPECT_GE(routed, 5);
}

TEST(TurnAwareRouter, ExpansionSizesReported) {
  Cross x;
  TurnAwareRouter router(x.wg.g, x.wg.weights, standard_turn_policy(x.wg.g));
  EXPECT_EQ(router.num_expanded_nodes(), x.wg.g.num_edges());
  // Each of the 4 incoming edges has 3 allowed continuations (U-turn
  // banned), each of the 4 outgoing arms has 1 (into the junction from
  // the dead end... none: arms are dead ends so edges INTO arms have no
  // continuation).  4 incoming x 3 = 12 arcs.
  EXPECT_EQ(router.num_turn_arcs(), 12u);
}

}  // namespace
}  // namespace mts
