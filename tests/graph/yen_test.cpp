#include "graph/yen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

TEST(Yen, DiamondRanksAllThreePaths) {
  test::Diamond d;
  const auto paths = yen_ksp(d.wg.g, d.wg.weights, d.s, d.t, 10);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 3.0);
  EXPECT_DOUBLE_EQ(paths[2].length, 4.0);
  EXPECT_EQ(paths[2].edges, (std::vector<EdgeId>{d.st}));
}

TEST(Yen, KZeroAndKOne) {
  test::Diamond d;
  EXPECT_TRUE(yen_ksp(d.wg.g, d.wg.weights, d.s, d.t, 0).empty());
  const auto one = yen_ksp(d.wg.g, d.wg.weights, d.s, d.t, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].length, 2.0);
}

TEST(Yen, UnreachableTargetReturnsEmpty) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  g.finalize();
  const std::vector<double> w = {1.0};
  EXPECT_TRUE(yen_ksp(g, w, a, c, 5).empty());
}

TEST(Yen, RejectsSourceEqualsTarget) {
  test::Diamond d;
  EXPECT_THROW(yen_ksp(d.wg.g, d.wg.weights, d.s, d.s, 3), PreconditionViolation);
}

TEST(Yen, PathsAreSimpleSortedAndDistinct) {
  Rng rng(42);
  auto wg = test::make_random_graph(25, 90, rng);
  const NodeId s(0);
  const NodeId t(24);
  const auto paths = yen_ksp(wg.g, wg.weights, s, t, 30);
  ASSERT_GE(paths.size(), 5u);
  std::set<std::vector<EdgeId>> seen;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_TRUE(is_simple_path(wg.g, paths[i], s, t)) << "path " << i;
    EXPECT_NEAR(path_length(paths[i].edges, wg.weights), paths[i].length, 1e-9);
    EXPECT_TRUE(seen.insert(paths[i].edges).second) << "duplicate path " << i;
    if (i > 0) {
      EXPECT_GE(paths[i].length, paths[i - 1].length - 1e-12);
    }
  }
}

TEST(Yen, MatchesBruteForceEnumeration) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(9, 20, rng);
    const NodeId s(0);
    const NodeId t(8);
    const auto expected = test::enumerate_simple_paths(wg.g, wg.weights, s, t);
    const auto actual = yen_ksp(wg.g, wg.weights, s, t, expected.size() + 5);
    ASSERT_EQ(actual.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // Lengths must agree rank by rank (edge sequences may differ on ties).
      EXPECT_NEAR(actual[i].length, expected[i].length, 1e-9)
          << "seed " << seed << " rank " << i;
    }
  }
}

TEST(Yen, GridHasManyEqualLengthPaths) {
  auto wg = test::make_grid(4, 4);
  const NodeId s(0);
  const NodeId t(15);
  // Shortest path on a 4x4 grid takes 6 unit steps; C(6,3) = 20 monotone
  // routes all have length 6.
  const auto paths = yen_ksp(wg.g, wg.weights, s, t, 20);
  ASSERT_EQ(paths.size(), 20u);
  for (const auto& path : paths) EXPECT_DOUBLE_EQ(path.length, 6.0);
}

TEST(Yen, TieBreakPopsLexSmallestCandidate) {
  // Two tied-length candidates sit in the heap at once; the deterministic
  // tie-break must pop the lexicographically smaller edge sequence.  With
  // the old length-only comparator the pick depended on heap internals
  // (libstdc++'s priority_queue returned the insertion-order first, i.e.
  // the spur-position-0 deviation [sb, bt]).
  test::WeightedGraph wg;
  const NodeId s = wg.g.add_node(0, 0);
  const NodeId a = wg.g.add_node(1, 1);
  const NodeId t = wg.g.add_node(2, 0);
  const NodeId b = wg.g.add_node(1, -1);
  const NodeId c = wg.g.add_node(2, 1);
  const EdgeId sa = wg.edge(s, a, 1.0);
  const EdgeId at = wg.edge(a, t, 1.0);
  const EdgeId sb = wg.edge(s, b, 1.0);
  const EdgeId bt = wg.edge(b, t, 1.5);
  const EdgeId ac = wg.edge(a, c, 0.5);
  const EdgeId ct = wg.edge(c, t, 1.0);
  wg.g.finalize();

  // Rank 1 is uniquely s->a->t (2.0).  Expanding it queues BOTH deviations
  // s->b->t (2.5, edges [sb, bt]) and s->a->c->t (2.5, edges [sa, ac, ct]).
  const auto paths = yen_ksp(wg.g, wg.weights, s, t, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].edges, (std::vector<EdgeId>{sa, at}));
  EXPECT_DOUBLE_EQ(paths[1].length, 2.5);
  EXPECT_DOUBLE_EQ(paths[2].length, 2.5);
  EXPECT_EQ(paths[1].edges, (std::vector<EdgeId>{sa, ac, ct}));  // lex-min tie
  EXPECT_EQ(paths[2].edges, (std::vector<EdgeId>{sb, bt}));

  // The second-shortest oracle resolves the same tie the same way.
  const auto second = second_shortest_path(wg.g, wg.weights, s, t, paths[0]);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->edges, (std::vector<EdgeId>{sa, ac, ct}));
}

TEST(Yen, TieHeavyLatticeRanksAreStableAcrossK) {
  // Regression for the paper's p* = k-th path on tie-heavy lattices: the
  // ranking must be a well-defined sequence, so asking for fewer paths
  // returns a prefix of asking for more, and the k-th path is stable.
  auto wg = test::make_grid(4, 4);
  const NodeId s(0);
  const NodeId t(15);
  const auto all = yen_ksp(wg.g, wg.weights, s, t, 20);
  ASSERT_EQ(all.size(), 20u);
  for (std::size_t k : {1u, 5u, 10u, 19u}) {
    const auto prefix = yen_ksp(wg.g, wg.weights, s, t, k);
    ASSERT_EQ(prefix.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(prefix[i].edges, all[i].edges) << "k=" << k << " rank " << i;
    }
  }
  // The 20 tied ranks are exactly the 20 monotone routes (no duplicates,
  // no longer path sneaking in).
  const auto expected = test::enumerate_simple_paths(wg.g, wg.weights, s, t);
  std::set<std::vector<EdgeId>> expected_shortest;
  for (std::size_t i = 0; i < 20; ++i) expected_shortest.insert(expected[i].edges);
  std::set<std::vector<EdgeId>> actual;
  for (const auto& path : all) actual.insert(path.edges);
  EXPECT_EQ(actual, expected_shortest);
}

TEST(Yen, RespectsBaseFilter) {
  test::Diamond d;
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  YenOptions options;
  options.filter = &filter;
  const auto paths = yen_ksp(d.wg.g, d.wg.weights, d.s, d.t, 10, options);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].length, 3.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 4.0);
}

TEST(Yen, SpurSearchCapTruncates) {
  Rng rng(3);
  auto wg = test::make_random_graph(30, 120, rng);
  YenOptions options;
  options.max_spur_searches = 1;
  const auto paths = yen_ksp(wg.g, wg.weights, NodeId(0), NodeId(29), 50, options);
  EXPECT_LE(paths.size(), 2u);
  EXPECT_GE(paths.size(), 1u);
}

TEST(SecondShortestPath, FindsRunnerUp) {
  test::Diamond d;
  const auto first = shortest_path(d.wg.g, d.wg.weights, d.s, d.t);
  ASSERT_TRUE(first.has_value());
  const auto second = second_shortest_path(d.wg.g, d.wg.weights, d.s, d.t, *first);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->length, 3.0);
  EXPECT_NE(second->edges, first->edges);
}

TEST(SecondShortestPath, NoneWhenUnique) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b);
  g.finalize();
  const std::vector<double> w = {1.0};
  Path only{{e}, 1.0};
  EXPECT_FALSE(second_shortest_path(g, w, a, b, only).has_value());
}

TEST(SecondShortestPath, AgreesWithYenRankTwo) {
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(20, 70, rng);
    const NodeId s(0);
    const NodeId t(19);
    const auto top2 = yen_ksp(wg.g, wg.weights, s, t, 2);
    if (top2.size() < 2) continue;
    const auto second = second_shortest_path(wg.g, wg.weights, s, t, top2[0]);
    ASSERT_TRUE(second.has_value()) << "seed " << seed;
    EXPECT_NEAR(second->length, top2[1].length, 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mts
