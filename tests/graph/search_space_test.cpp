// SearchSpace unit tests: epoch invalidation, the canonical heap order,
// and the headline property of the workspace refactor — a reused
// workspace produces labels bit-identical to a fresh one.
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "graph/dijkstra.hpp"
#include "graph/search_space.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

using test::make_random_graph;
using test::WeightedGraph;

TEST(SearchSpace, BeginReportsReuse) {
  SearchSpace ws;
  EXPECT_FALSE(ws.begin(16));  // first use allocates
  EXPECT_TRUE(ws.begin(16));   // same size: pure epoch bump
  EXPECT_TRUE(ws.begin(8));    // shrinking reuses the larger storage
  EXPECT_FALSE(ws.begin(32));  // growth reallocates
  EXPECT_TRUE(ws.begin(32));
  EXPECT_GE(ws.size(), 32u);
}

TEST(SearchSpace, StaleLabelsReadAsReset) {
  SearchSpace ws;
  ws.begin(4);
  const NodeId n(2);
  ws.set_label(n, 1.5, EdgeId(7));
  EXPECT_TRUE(ws.try_settle(n));
  EXPECT_EQ(ws.dist(n), 1.5);
  EXPECT_EQ(ws.parent_edge(n), EdgeId(7));
  EXPECT_TRUE(ws.settled(n));
  EXPECT_TRUE(ws.reached(n));

  ws.begin(4);  // new epoch: every label must read as reset
  EXPECT_EQ(ws.dist(n), kInfiniteDistance);
  EXPECT_FALSE(ws.parent_edge(n).valid());
  EXPECT_FALSE(ws.settled(n));
  EXPECT_FALSE(ws.reached(n));
}

TEST(SearchSpace, TrySettleOncePerEpoch) {
  SearchSpace ws;
  ws.begin(4);
  const NodeId n(1);
  EXPECT_TRUE(ws.try_settle(n));
  EXPECT_FALSE(ws.try_settle(n));  // lazy heap deletion path
  ws.begin(4);
  EXPECT_TRUE(ws.try_settle(n));  // epoch bump re-arms the node
}

TEST(SearchSpace, SetLabelAfterSettleKeepsSettledBit) {
  SearchSpace ws;
  ws.begin(4);
  const NodeId n(3);
  ws.set_label(n, 2.0, EdgeId(1));
  ASSERT_TRUE(ws.try_settle(n));
  ws.set_label(n, 1.0, EdgeId(2));  // same-epoch relabel must not unsettle
  EXPECT_TRUE(ws.settled(n));
  EXPECT_EQ(ws.dist(n), 1.0);
}

// The heap's pop order is the total order (key, node id): independent of
// insertion order, which is what makes goal-directed pruning unable to
// reorder equal-key pops (DESIGN.md section 9).
TEST(SearchSpace, HeapPopsByKeyThenNodeId) {
  const std::vector<SearchSpace::HeapEntry> entries = {
      {2.0, NodeId(5)}, {1.0, NodeId(9)}, {1.0, NodeId(3)},
      {3.0, NodeId(0)}, {1.0, NodeId(7)}, {2.0, NodeId(1)},
  };
  Rng rng(42);
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<std::vector<SearchSpace::HeapEntry>> pops;
  for (int perm = 0; perm < 8; ++perm) {
    rng.shuffle(order);
    SearchSpace ws;
    ws.begin(16);
    for (std::size_t i : order) ws.heap_push(entries[i].key, entries[i].node);
    std::vector<SearchSpace::HeapEntry> popped;
    while (!ws.heap_empty()) popped.push_back(ws.heap_pop());
    pops.push_back(std::move(popped));
  }
  for (const auto& popped : pops) {
    ASSERT_EQ(popped.size(), entries.size());
    for (std::size_t i = 0; i + 1 < popped.size(); ++i) {
      const bool ordered = popped[i].key < popped[i + 1].key ||
                           (popped[i].key == popped[i + 1].key &&
                            popped[i].node.value() < popped[i + 1].node.value());
      EXPECT_TRUE(ordered) << "pop " << i << " out of (key, id) order";
    }
    EXPECT_EQ(popped[0].node, pops[0][0].node);  // identical across permutations
    for (std::size_t i = 0; i < popped.size(); ++i) {
      EXPECT_EQ(popped[i].node, pops[0][i].node);
    }
  }
}

TEST(SearchSpace, HeapTopKeyIsInfiniteWhenEmpty) {
  SearchSpace ws;
  ws.begin(4);
  EXPECT_EQ(ws.heap_top_key(), kInfiniteDistance);
  ws.heap_push(2.5, NodeId(1));
  EXPECT_EQ(ws.heap_top_key(), 2.5);
}

// The core reuse guarantee: searching in a workspace that previously ran
// unrelated searches yields labels bitwise equal to a fresh workspace.
TEST(SearchSpace, ReusedWorkspaceMatchesFreshBitIdentical) {
  Rng rng(7);
  const WeightedGraph wg = make_random_graph(200, 700, rng);
  const DiGraph& g = wg.g;
  const NodeId probe(17);

  SearchSpace fresh;
  dijkstra(fresh, g, wg.weights, probe);

  SearchSpace reused;
  for (std::uint32_t s = 0; s < 25; ++s) {  // pollute with unrelated searches
    DijkstraOptions options;
    options.target = NodeId((s * 13) % 200);
    dijkstra(reused, g, wg.weights, NodeId(s * 7 % 200), options);
  }
  dijkstra(reused, g, wg.weights, probe);

  for (NodeId n : g.nodes()) {
    ASSERT_EQ(fresh.dist(n), reused.dist(n)) << "node " << n.value();
    ASSERT_EQ(fresh.parent_edge(n), reused.parent_edge(n)) << "node " << n.value();
    ASSERT_EQ(fresh.settled(n), reused.settled(n)) << "node " << n.value();
  }
  EXPECT_EQ(fresh.last.nodes_settled, reused.last.nodes_settled);
  EXPECT_EQ(fresh.last.edges_scanned, reused.last.edges_scanned);
}

// Reverse search produces node -> sink distances along in-edges; they must
// agree with forward point queries (up to summation-order slack, which is
// exactly why the goal-directed engine pads its prune bound).
TEST(SearchSpace, ReverseTreeMatchesForwardDistances) {
  Rng rng(11);
  const WeightedGraph wg = make_random_graph(120, 400, rng);
  const DiGraph& g = wg.g;
  const NodeId sink(119);

  SearchSpace reverse_tree;
  reverse_dijkstra(reverse_tree, g, wg.weights, sink);

  for (std::uint32_t s = 0; s < 120; s += 9) {
    const double forward = shortest_distance(g, wg.weights, NodeId(s), sink);
    const double backward = reverse_tree.dist(NodeId(s));
    if (forward == kInfiniteDistance) {
      EXPECT_EQ(backward, kInfiniteDistance);
    } else {
      EXPECT_NEAR(backward, forward, 1e-9 * (1.0 + forward));
    }
  }
}

TEST(SearchSpace, ThreadSlotsAreDistinctAndStable) {
  SearchSpace& primary = thread_search_space(0);
  SearchSpace& secondary = thread_search_space(1);
  EXPECT_NE(&primary, &secondary);
  EXPECT_EQ(&primary, &thread_search_space());  // slot 0 is the default
  EXPECT_EQ(&secondary, &thread_search_space(1));
}

}  // namespace
}  // namespace mts
