#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/error.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

double cut_capacity(const MaxFlowResult& result, const std::vector<double>& capacities) {
  double total = 0.0;
  for (EdgeId e : result.cut_edges) total += capacities[e.value()];
  return total;
}

TEST(MaxFlow, SingleEdge) {
  DiGraph g;
  const NodeId s = g.add_node();
  const NodeId t = g.add_node();
  g.add_edge(s, t);
  g.finalize();
  const std::vector<double> cap = {3.5};
  const auto result = max_flow(g, cap, s, t);
  EXPECT_DOUBLE_EQ(result.flow, 3.5);
  ASSERT_EQ(result.cut_edges.size(), 1u);
  EXPECT_DOUBLE_EQ(cut_capacity(result, cap), 3.5);
}

TEST(MaxFlow, ClassicTwoPathNetwork) {
  // s -> a -> t (caps 3, 2) and s -> b -> t (caps 2, 3), a -> b cap 1.
  DiGraph g;
  const NodeId s = g.add_node();
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId t = g.add_node();
  g.add_edge(s, a);
  g.add_edge(a, t);
  g.add_edge(s, b);
  g.add_edge(b, t);
  g.add_edge(a, b);
  g.finalize();
  const std::vector<double> cap = {3, 2, 2, 3, 1};
  const auto result = max_flow(g, cap, s, t);
  EXPECT_DOUBLE_EQ(result.flow, 5.0);
  EXPECT_DOUBLE_EQ(cut_capacity(result, cap), 5.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  DiGraph g;
  const NodeId s = g.add_node();
  const NodeId t = g.add_node();
  g.add_node();
  g.finalize();
  const std::vector<double> cap;
  const auto result = max_flow(g, cap, s, t);
  EXPECT_DOUBLE_EQ(result.flow, 0.0);
  EXPECT_TRUE(result.cut_edges.empty());
  EXPECT_TRUE(result.source_side[s.value()]);
  EXPECT_FALSE(result.source_side[t.value()]);
}

TEST(MaxFlow, ParallelEdgesAdd) {
  DiGraph g;
  const NodeId s = g.add_node();
  const NodeId t = g.add_node();
  g.add_edge(s, t);
  g.add_edge(s, t);
  g.finalize();
  const std::vector<double> cap = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(max_flow(g, cap, s, t).flow, 3.0);
}

TEST(MaxFlow, RejectsNegativeCapacityAndBadArgs) {
  DiGraph g;
  const NodeId s = g.add_node();
  const NodeId t = g.add_node();
  g.add_edge(s, t);
  g.finalize();
  const std::vector<double> bad = {-1.0};
  EXPECT_THROW(max_flow(g, bad, s, t), PreconditionViolation);
  const std::vector<double> cap = {1.0};
  EXPECT_THROW(max_flow(g, cap, s, s), PreconditionViolation);
}

TEST(MaxFlow, MinCutDisconnectsOnGrid) {
  auto wg = test::make_grid(5, 5);
  std::vector<double> cap(wg.g.num_edges(), 1.0);
  const NodeId s(0);
  const NodeId t(24);
  const auto result = max_flow(wg.g, cap, s, t);
  // Corner degree is 2, so the min cut is the 2 outgoing edges.
  EXPECT_DOUBLE_EQ(result.flow, 2.0);
  EXPECT_DOUBLE_EQ(cut_capacity(result, cap), 2.0);

  // Removing the cut edges must disconnect s from t.
  EdgeFilter filter(wg.g.num_edges());
  for (EdgeId e : result.cut_edges) filter.remove(e);
  std::vector<std::uint8_t> seen(wg.g.num_nodes(), 0);
  std::vector<NodeId> stack = {s};
  seen[s.value()] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (EdgeId e : wg.g.out_edges(u)) {
      if (filter.is_removed(e)) continue;
      const NodeId v = wg.g.edge_to(e);
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        stack.push_back(v);
      }
    }
  }
  EXPECT_FALSE(seen[t.value()]);
}

TEST(MaxFlow, FlowEqualsMinCutOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(20, 60, rng);
    std::vector<double> cap;
    cap.reserve(wg.g.num_edges());
    for (std::size_t i = 0; i < wg.g.num_edges(); ++i) cap.push_back(rng.uniform(0.5, 4.0));
    const auto result = max_flow(wg.g, cap, NodeId(0), NodeId(19));
    EXPECT_NEAR(result.flow, cut_capacity(result, cap), 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mts
