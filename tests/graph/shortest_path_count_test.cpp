#include "graph/shortest_path_count.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mts {
namespace {

TEST(CountShortestPaths, UniquePath) {
  test::Diamond d;
  EXPECT_EQ(count_shortest_paths(d.wg.g, d.wg.weights, d.s, d.t), 1u);
}

TEST(CountShortestPaths, TiedDiamond) {
  test::Diamond d;
  auto w = d.wg.weights;
  w[d.sb.value()] = 1.0;
  w[d.bt.value()] = 1.0;  // both arms now cost 2
  EXPECT_EQ(count_shortest_paths(d.wg.g, w, d.s, d.t), 2u);
}

TEST(CountShortestPaths, GridBinomial) {
  auto wg = test::make_grid(4, 4);
  // Monotone lattice paths from corner to corner: C(6, 3) = 20.
  EXPECT_EQ(count_shortest_paths(wg.g, wg.weights, NodeId(0), NodeId(15)), 20u);
}

TEST(CountShortestPaths, UnreachableIsZero) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.finalize();
  const std::vector<double> w;
  EXPECT_EQ(count_shortest_paths(g, w, a, b), 0u);
}

TEST(CountShortestPaths, FilterBreaksTie) {
  test::Diamond d;
  auto w = d.wg.weights;
  w[d.sb.value()] = 1.0;
  w[d.bt.value()] = 1.0;
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sb);
  EXPECT_EQ(count_shortest_paths(d.wg.g, w, d.s, d.t, &filter), 1u);
}

TEST(CountShortestPaths, SourceEqualsTarget) {
  test::Diamond d;
  EXPECT_EQ(count_shortest_paths(d.wg.g, d.wg.weights, d.s, d.s), 1u);
}

TEST(CountShortestPaths, CapLimitsGrowth) {
  auto wg = test::make_grid(8, 8);
  // C(14, 7) = 3432 tied monotone paths; cap at 100.
  EXPECT_EQ(count_shortest_paths(wg.g, wg.weights, NodeId(0), NodeId(63), nullptr, 100), 100u);
}

TEST(CountShortestPaths, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(9, 18, rng);
    const NodeId s(0);
    const NodeId t(8);
    const auto all = test::enumerate_simple_paths(wg.g, wg.weights, s, t);
    ASSERT_FALSE(all.empty());
    const double best = all.front().length;
    std::uint64_t expected = 0;
    for (const auto& p : all) {
      if (p.length <= best + 1e-9 * (1.0 + best)) ++expected;
    }
    EXPECT_EQ(count_shortest_paths(wg.g, wg.weights, s, t), expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mts
