// Randomized cross-engine equivalence: plain Dijkstra, A* driven by an
// exact reverse-tree heuristic, and bidirectional search must return the
// same path (same tie-broken edges, same length) on every query — with
// and without edge filters and node bans.  This is the safety net for the
// goal-directed spur engine: the reverse tree used here is the same
// structure yen.cpp and the oracle use as a lower bound.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "graph/astar.hpp"
#include "graph/bidirectional.hpp"
#include "graph/dijkstra.hpp"
#include "graph/edge_filter.hpp"
#include "graph/search_space.hpp"
#include "graph/yen.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

using test::make_random_graph;
using test::WeightedGraph;

/// Exact admissible heuristic: remaining distance read off a reverse
/// shortest-path tree rooted at the target.  Built over the *unfiltered*
/// graph even when the query is filtered — removals only lengthen paths,
/// so the bound stays admissible (and consistent), mirroring the oracle.
Heuristic reverse_tree_heuristic(const SearchSpace& reverse_tree) {
  return [&reverse_tree](NodeId n) { return reverse_tree.dist(n); };
}

void expect_same_path(const std::optional<Path>& expected, const std::optional<Path>& actual,
                      const char* engine) {
  ASSERT_EQ(expected.has_value(), actual.has_value()) << engine << " reachability differs";
  if (!expected.has_value()) return;
  EXPECT_EQ(expected->edges, actual->edges) << engine << " picked different edges";
  EXPECT_NEAR(actual->length, expected->length, 1e-9 * (1.0 + expected->length)) << engine;
}

void check_all_engines(const DiGraph& g, const std::vector<double>& weights, NodeId s, NodeId t,
                       const EdgeFilter* filter, const std::vector<std::uint8_t>* banned) {
  DijkstraOptions options;
  options.target = t;
  options.filter = filter;
  options.banned_nodes = banned;
  SearchSpace plain_ws;
  dijkstra(plain_ws, g, weights, s, options);
  const auto plain = extract_path(g, plain_ws, s, t);

  // A* runs in the thread's slot 0, so the reverse tree lives in a local
  // workspace here (production code holds it in slot 1 or a member).
  SearchSpace reverse_tree;
  reverse_dijkstra(reverse_tree, g, weights, t);
  const auto goal_directed =
      astar(g, weights, s, t, reverse_tree_heuristic(reverse_tree), filter, banned);
  expect_same_path(plain, goal_directed.path, "astar");

  const auto bidirectional = bidirectional_shortest_path(g, weights, s, t, filter, banned);
  expect_same_path(plain, bidirectional.path, "bidirectional");
}

TEST(EngineEquivalence, RandomGraphsAgreeUnfiltered) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(100 + seed);
    const WeightedGraph wg = make_random_graph(120, 420, rng);
    for (int q = 0; q < 6; ++q) {
      const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(120)));
      const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(120)));
      if (s == t) continue;
      check_all_engines(wg.g, wg.weights, s, t, nullptr, nullptr);
    }
  }
}

TEST(EngineEquivalence, RandomGraphsAgreeWithFiltersAndBans) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(300 + seed);
    const WeightedGraph wg = make_random_graph(100, 350, rng);
    const DiGraph& g = wg.g;

    EdgeFilter filter(g.num_edges());
    for (EdgeId e : g.edges()) {
      if (rng.chance(0.15)) filter.remove(e);
    }
    std::vector<std::uint8_t> banned(g.num_nodes(), 0);
    for (std::size_t n = 0; n < g.num_nodes(); ++n) banned[n] = rng.chance(0.08) ? 1 : 0;

    for (int q = 0; q < 6; ++q) {
      const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(100)));
      const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(100)));
      if (s == t) continue;
      check_all_engines(g, wg.weights, s, t, &filter, nullptr);
      check_all_engines(g, wg.weights, s, t, nullptr, &banned);
      check_all_engines(g, wg.weights, s, t, &filter, &banned);
    }
  }
}

// The tightest possible prune bound — the exact shortest distance — must
// still let the optimal path through (the 1e-9 relative padding absorbs
// summation-order slack between the forward search and the reverse tree).
TEST(EngineEquivalence, GoalBoundedDijkstraMatchesPlainAtExactBound) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(500 + seed);
    const WeightedGraph wg = make_random_graph(150, 500, rng);
    const DiGraph& g = wg.g;
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(150)));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(150)));
    if (s == t) continue;

    DijkstraOptions plain_options;
    plain_options.target = t;
    SearchSpace plain_ws;
    dijkstra(plain_ws, g, wg.weights, s, plain_options);
    const auto plain = extract_path(g, plain_ws, s, t);
    if (!plain.has_value()) continue;

    SearchSpace reverse_tree;
    reverse_dijkstra(reverse_tree, g, wg.weights, t);

    DijkstraOptions bounded_options;
    bounded_options.target = t;
    bounded_options.goal_bounds = &reverse_tree;
    bounded_options.prune_bound = reverse_tree.dist(s);
    SearchSpace bounded_ws;
    dijkstra(bounded_ws, g, wg.weights, s, bounded_options);
    const auto bounded = extract_path(g, bounded_ws, s, t);

    expect_same_path(plain, bounded, "goal-bounded dijkstra");
    EXPECT_LE(bounded_ws.last.nodes_settled, plain_ws.last.nodes_settled);
  }
}

// An infinite prune bound with goal bounds attached only skips provably
// disconnected heads — the reachable label set is untouched.
TEST(EngineEquivalence, GoalBoundsWithInfiniteBoundPreservePaths) {
  Rng rng(900);
  const WeightedGraph wg = make_random_graph(100, 300, rng);
  const DiGraph& g = wg.g;
  const NodeId s(3), t(97);

  SearchSpace reverse_tree;
  reverse_dijkstra(reverse_tree, g, wg.weights, t);

  DijkstraOptions plain_options;
  plain_options.target = t;
  SearchSpace plain_ws;
  dijkstra(plain_ws, g, wg.weights, s, plain_options);

  DijkstraOptions bounded_options = plain_options;
  bounded_options.goal_bounds = &reverse_tree;  // prune_bound stays infinite
  SearchSpace bounded_ws;
  dijkstra(bounded_ws, g, wg.weights, s, bounded_options);

  expect_same_path(extract_path(g, plain_ws, s, t), extract_path(g, bounded_ws, s, t),
                   "inf-bound dijkstra");
  EXPECT_EQ(bounded_ws.last.bound_pruned, 0u);
}

// The first Yen path is read straight off the reverse tree; its forward
// re-walk must match a forward Dijkstra bit-for-bit (same unique path,
// length re-accumulated in forward order).
TEST(EngineEquivalence, ExtractReversePathMatchesForwardSearch) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(700 + seed);
    const WeightedGraph wg = make_random_graph(130, 450, rng);
    const DiGraph& g = wg.g;
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(130)));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(130)));
    if (s == t) continue;

    SearchSpace reverse_tree;
    reverse_dijkstra(reverse_tree, g, wg.weights, t);
    const auto via_tree = extract_reverse_path(g, reverse_tree, wg.weights, s, t);
    const auto forward = shortest_path(g, wg.weights, s, t);

    ASSERT_EQ(via_tree.has_value(), forward.has_value());
    if (!forward.has_value()) continue;
    EXPECT_EQ(via_tree->edges, forward->edges);
    EXPECT_EQ(via_tree->length, forward->length);  // bitwise: same forward sum
  }
}

// The admission bound depends on how many more paths are needed, so the
// k=4 run prunes differently from the k=10 run — the results must still
// share an identical prefix.
TEST(EngineEquivalence, YenPrefixStableAcrossK) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(1100 + seed);
    const WeightedGraph wg = make_random_graph(60, 240, rng);
    const NodeId s(0), t(59);
    const auto full = yen_ksp(wg.g, wg.weights, s, t, 10);
    const auto prefix = yen_ksp(wg.g, wg.weights, s, t, 4);
    ASSERT_LE(prefix.size(), full.size());
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      EXPECT_EQ(prefix[i].edges, full[i].edges) << "rank " << i;
      EXPECT_EQ(prefix[i].length, full[i].length) << "rank " << i;
    }
  }
}

// Same checks on a generated metropolitan graph — the distribution the
// paper's experiments actually run on (tie-free continuous weights).
TEST(EngineEquivalence, CitygenCityAllEnginesAgree) {
  const auto network = citygen::generate_city(citygen::City::Boston, 0.15, 5);
  const auto weights = attack::make_weights(network, attack::WeightType::Length);
  const DiGraph& g = network.graph();
  ASSERT_GT(g.num_nodes(), 50u);

  Rng rng(13);
  for (int q = 0; q < 15; ++q) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    if (s == t) continue;
    check_all_engines(g, weights, s, t, nullptr, nullptr);
  }
}

}  // namespace
}  // namespace mts
