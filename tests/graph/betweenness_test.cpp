#include "graph/betweenness.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace mts {
namespace {

TEST(Betweenness, PathGraphMiddleEdgeHighest) {
  // a -> b -> c -> d: edge (b, c) carries pairs {a,b}x{c,d} = most paths.
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  const EdgeId ab = g.add_edge(a, b);
  const EdgeId bc = g.add_edge(b, c);
  const EdgeId cd = g.add_edge(c, d);
  g.finalize();
  const std::vector<double> w = {1.0, 1.0, 1.0};

  BetweennessOptions options;
  options.normalize = false;
  const auto eb = edge_betweenness(g, w, options);
  // ab serves pairs (a,b),(a,c),(a,d) = 3; bc serves (a,c),(a,d),(b,c),(b,d) = 4.
  EXPECT_DOUBLE_EQ(eb[ab.value()], 3.0);
  EXPECT_DOUBLE_EQ(eb[bc.value()], 4.0);
  EXPECT_DOUBLE_EQ(eb[cd.value()], 3.0);
}

TEST(Betweenness, NormalizationDividesByPairs) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId ab = g.add_edge(a, b);
  g.finalize();
  const std::vector<double> w = {1.0};
  const auto eb = edge_betweenness(g, w);  // normalize = true, n(n-1) = 2
  EXPECT_DOUBLE_EQ(eb[ab.value()], 0.5);
}

TEST(Betweenness, SplitsFlowAcrossTiedPaths) {
  test::Diamond d;
  // Make both two-hop routes tie at length 2 so flow splits.
  std::vector<double> w = d.wg.weights;
  w[d.sb.value()] = 1.0;
  w[d.bt.value()] = 1.0;
  BetweennessOptions options;
  options.normalize = false;
  const auto eb = edge_betweenness(d.wg.g, w, options);
  // Pair (s, t) contributes 0.5 to each arm; (s,a)/(a,t) contribute 1 fully.
  EXPECT_DOUBLE_EQ(eb[d.sa.value()], 1.5);
  EXPECT_DOUBLE_EQ(eb[d.sb.value()], 1.5);
  EXPECT_DOUBLE_EQ(eb[d.st.value()], 0.0);  // never shortest
}

TEST(Betweenness, FilterRedirectsFlow) {
  test::Diamond d;
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  BetweennessOptions options;
  options.normalize = false;
  options.filter = &filter;
  const auto eb = edge_betweenness(d.wg.g, d.wg.weights, options);
  EXPECT_DOUBLE_EQ(eb[d.sa.value()], 0.0);
  EXPECT_GT(eb[d.sb.value()], 0.0);
}

TEST(Betweenness, NodeVariantExcludesEndpoints) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  const std::vector<double> w = {1.0, 1.0};
  BetweennessOptions options;
  options.normalize = false;
  const auto nb = node_betweenness(g, w, options);
  EXPECT_DOUBLE_EQ(nb[a.value()], 0.0);
  EXPECT_DOUBLE_EQ(nb[b.value()], 1.0);  // only pair (a, c) passes through b
  EXPECT_DOUBLE_EQ(nb[c.value()], 0.0);
}

TEST(Betweenness, GridCenterBeatsCorners) {
  auto wg = test::make_grid(5, 5);
  BetweennessOptions options;
  options.normalize = false;
  const auto nb = node_betweenness(wg.g, wg.weights, options);
  const double center = nb[12];  // (2, 2)
  const double corner = nb[0];
  EXPECT_GT(center, corner * 2.0);
}

TEST(Betweenness, PivotSamplingApproximatesExact) {
  auto wg = test::make_grid(6, 6);
  const auto exact = edge_betweenness(wg.g, wg.weights);
  BetweennessOptions options;
  options.pivots = 18;  // half the nodes
  options.seed = 3;
  const auto approx = edge_betweenness(wg.g, wg.weights, options);
  // Rank correlation proxy: the top exact edge should be near the top of
  // the approximation.
  const auto top_exact = std::max_element(exact.begin(), exact.end()) - exact.begin();
  double rank = 0;
  for (double v : approx) {
    if (v > approx[static_cast<std::size_t>(top_exact)]) ++rank;
  }
  EXPECT_LT(rank, wg.g.num_edges() / 4.0);
}

}  // namespace
}  // namespace mts
