#include "attack/models.hpp"

#include <gtest/gtest.h>

#include "citygen/generate.hpp"
#include "core/units.hpp"

namespace mts::attack {
namespace {

const osm::RoadNetwork& test_network() {
  static const osm::RoadNetwork network =
      citygen::generate_city(citygen::City::Chicago, 0.2, 3);
  return network;
}

TEST(Models, LengthWeightsMatchSegments) {
  const auto& network = test_network();
  const auto weights = make_weights(network, WeightType::Length);
  ASSERT_EQ(weights.size(), network.graph().num_edges());
  for (EdgeId e : network.graph().edges()) {
    EXPECT_DOUBLE_EQ(weights[e.value()], network.segment(e).length_m);
  }
}

TEST(Models, TimeWeightsAreLengthOverSpeed) {
  const auto& network = test_network();
  const auto weights = make_weights(network, WeightType::Time);
  for (EdgeId e : network.graph().edges()) {
    const auto& seg = network.segment(e);
    EXPECT_NEAR(weights[e.value()], seg.length_m / seg.speed_mps, 1e-12);
  }
}

TEST(Models, UniformCostsAreOne) {
  const auto& network = test_network();
  const auto costs = make_costs(network, CostType::Uniform);
  for (double c : costs) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Models, LanesCostsArePositiveIntegers) {
  const auto& network = test_network();
  const auto costs = make_costs(network, CostType::Lanes);
  for (EdgeId e : network.graph().edges()) {
    EXPECT_DOUBLE_EQ(costs[e.value()], network.segment(e).lanes);
    EXPECT_GE(costs[e.value()], 1.0);
  }
}

TEST(Models, WidthCostsUseCarWidthDivisor) {
  const auto& network = test_network();
  const auto costs = make_costs(network, CostType::Width);
  for (EdgeId e : network.graph().edges()) {
    EXPECT_NEAR(costs[e.value()], network.segment(e).width_m / kAverageCarWidthMeters, 1e-12);
    EXPECT_GT(costs[e.value()], 0.0);
  }
}

TEST(Models, CostOrderingUniformLanesWidthOnAverage) {
  // Paper §III-B: UNIFORM cheapest, then LANES, WIDTH most expensive,
  // because a lane is wider than a car.
  const auto& network = test_network();
  const auto uniform = make_costs(network, CostType::Uniform);
  const auto lanes = make_costs(network, CostType::Lanes);
  const auto width = make_costs(network, CostType::Width);
  double sum_u = 0.0;
  double sum_l = 0.0;
  double sum_w = 0.0;
  for (std::size_t i = 0; i < uniform.size(); ++i) {
    sum_u += uniform[i];
    sum_l += lanes[i];
    sum_w += width[i];
  }
  EXPECT_LT(sum_u, sum_l);
  EXPECT_LT(sum_l, sum_w);
}

TEST(Models, ToStringNames) {
  EXPECT_STREQ(to_string(WeightType::Length), "LENGTH");
  EXPECT_STREQ(to_string(WeightType::Time), "TIME");
  EXPECT_STREQ(to_string(CostType::Uniform), "UNIFORM");
  EXPECT_STREQ(to_string(CostType::Lanes), "LANES");
  EXPECT_STREQ(to_string(CostType::Width), "WIDTH");
}

}  // namespace
}  // namespace mts::attack
