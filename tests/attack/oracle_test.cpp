#include "attack/oracle.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "graph/yen.hpp"
#include "test_util.hpp"

namespace mts::attack {
namespace {

using test::Diamond;

ForcePathCutProblem diamond_problem(const Diamond& d, const Path& p_star) {
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = d.wg.weights;  // costs unused by the oracle
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = p_star;
  return problem;
}

TEST(Oracle, ReportsShorterPathAsViolating) {
  Diamond d;
  // Force the slowest path (direct s->t, length 4).
  const auto problem = diamond_problem(d, Path{{d.st}, 4.0});
  ExclusivityOracle oracle(problem);
  EdgeFilter filter(d.wg.g.num_edges());

  const auto violating = oracle.find_violating_path(filter);
  ASSERT_TRUE(violating.has_value());
  EXPECT_DOUBLE_EQ(violating->length, 2.0);  // the true shortest
}

TEST(Oracle, CertifiesExclusivityAfterCuts) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.st}, 4.0});
  ExclusivityOracle oracle(problem);
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.sa);
  filter.remove(d.bt);
  EXPECT_FALSE(oracle.find_violating_path(filter).has_value());
  EXPECT_EQ(oracle.calls(), 1u);
}

TEST(Oracle, DetectsEqualLengthTie) {
  Diamond d;
  // Make the b-arm tie the a-arm at length 2, then force the a-arm.
  auto weights = d.wg.weights;
  weights[d.sb.value()] = 1.0;
  weights[d.bt.value()] = 1.0;
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = weights;
  problem.costs = weights;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = Path{{d.sa, d.at}, 2.0};

  ExclusivityOracle oracle(problem);
  EdgeFilter filter(d.wg.g.num_edges());
  const auto violating = oracle.find_violating_path(filter);
  ASSERT_TRUE(violating.has_value());  // tie means not exclusive
  EXPECT_NE(violating->edges, problem.p_star.edges);
  EXPECT_NEAR(violating->length, 2.0, 1e-12);

  filter.remove(d.sb);
  EXPECT_FALSE(oracle.find_violating_path(filter).has_value());
}

TEST(Oracle, PStarLengthComputedFromWeights) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.st}, 0.0 /* stale length */});
  ExclusivityOracle oracle(problem);
  EXPECT_DOUBLE_EQ(oracle.p_star_length(), 4.0);
}

TEST(Oracle, RejectsNonPath) {
  Diamond d;
  // Edges out of order: not a path.
  const auto problem = diamond_problem(d, Path{{d.at, d.sa}, 2.0});
  EXPECT_THROW(ExclusivityOracle{problem}, PreconditionViolation);
}

TEST(Oracle, RejectsEmptyPStar) {
  Diamond d;
  auto problem = diamond_problem(d, Path{});
  problem.target = d.s;
  EXPECT_THROW(ExclusivityOracle{problem}, PreconditionViolation);
}

TEST(Oracle, ThrowsIfPStarDamaged) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.st}, 4.0});
  ExclusivityOracle oracle(problem);
  EdgeFilter filter(d.wg.g.num_edges());
  filter.remove(d.st);  // removing p*'s own edge breaks the contract
  filter.remove(d.sa);
  filter.remove(d.sb);
  EXPECT_THROW(oracle.find_violating_path(filter), PreconditionViolation);
}

TEST(Oracle, MidRankPathOnGrid) {
  auto wg = test::make_grid(3, 3, 1.0, 1.3);
  const NodeId s(0);
  const NodeId t(8);
  const auto ranked = mts::yen_ksp(wg.g, wg.weights, s, t, 5);
  ASSERT_GE(ranked.size(), 5u);

  ForcePathCutProblem problem;
  problem.graph = &wg.g;
  problem.weights = wg.weights;
  problem.costs = wg.weights;
  problem.source = s;
  problem.target = t;
  problem.p_star = ranked[4];
  ExclusivityOracle oracle(problem);
  EdgeFilter filter(wg.g.num_edges());
  const auto violating = oracle.find_violating_path(filter);
  ASSERT_TRUE(violating.has_value());
  EXPECT_LE(violating->length, problem.p_star.length + 1e-9);
}

}  // namespace
}  // namespace mts::attack
