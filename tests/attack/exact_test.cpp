#include "attack/exact.hpp"

#include <gtest/gtest.h>

#include "attack/algorithms.hpp"
#include "attack/verify.hpp"
#include "graph/yen.hpp"
#include "test_util.hpp"

namespace mts::attack {
namespace {

using test::Diamond;

TEST(ExactCover, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    CoveringProblem problem;
    const std::size_t n = 12;
    for (std::size_t j = 0; j < n; ++j) problem.costs.push_back(rng.uniform(0.5, 3.0));
    for (std::size_t i = 0; i < 7; ++i) {
      std::vector<std::size_t> set;
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.chance(0.3)) set.push_back(j);
      }
      if (set.empty()) set.push_back(rng.uniform_index(n));
      problem.sets.push_back(std::move(set));
    }

    // Brute force over all 2^12 subsets.
    double optimum = 1e18;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      double cost = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (mask & (1u << j)) cost += problem.costs[j];
      }
      if (cost >= optimum) continue;
      bool ok = true;
      for (const auto& set : problem.sets) {
        bool covered = false;
        for (std::size_t j : set) covered |= (mask & (1u << j)) != 0;
        if (!covered) {
          ok = false;
          break;
        }
      }
      if (ok) optimum = cost;
    }

    const auto exact = solve_covering_exact(problem);
    ASSERT_TRUE(exact.feasible) << "seed " << seed;
    EXPECT_TRUE(exact.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(exact.cost, optimum, 1e-9) << "seed " << seed;
  }
}

TEST(ExactCover, EmptySetInfeasible) {
  CoveringProblem problem;
  problem.costs = {1.0};
  problem.sets = {{}};
  EXPECT_FALSE(solve_covering_exact(problem).feasible);
}

TEST(ExactCover, NoConstraintsIsFree) {
  CoveringProblem problem;
  problem.costs = {1.0, 2.0};
  const auto exact = solve_covering_exact(problem);
  ASSERT_TRUE(exact.feasible);
  EXPECT_TRUE(exact.proven_optimal);
  EXPECT_TRUE(exact.chosen.empty());
}

TEST(ExactAttack, DiamondOptimum) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = costs;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = Path{{d.st}, 4.0};

  const auto exact = run_exact_attack(problem);
  ASSERT_EQ(exact.status, AttackStatus::Success);
  EXPECT_TRUE(exact.proven_optimal);
  EXPECT_DOUBLE_EQ(exact.total_cost, 2.0);
  EXPECT_TRUE(verify_attack(problem, exact.removed_edges).ok);
}

TEST(ExactAttack, CheapCutBeatsLightEdges) {
  // The asymmetric-cost diamond from the algorithms test: exact must find
  // the cost-2 cut even though the naive edge choice costs 11.
  DiGraph g;
  const NodeId s = g.add_node();
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId t = g.add_node();
  const EdgeId sa = g.add_edge(s, a);
  const EdgeId at = g.add_edge(a, t);
  const EdgeId sb = g.add_edge(s, b);  // cheap cut candidate
  const EdgeId bt = g.add_edge(b, t);
  const EdgeId st = g.add_edge(s, t);
  g.finalize();
  const std::vector<double> weights = {0.5, 0.5, 1.5, 1.5, 4.0};
  std::vector<double> costs(g.num_edges(), 1.0);
  costs[sa.value()] = 10.0;
  costs[bt.value()] = 9.0;

  ForcePathCutProblem problem;
  problem.graph = &g;
  problem.weights = weights;
  problem.costs = costs;
  problem.source = s;
  problem.target = t;
  problem.p_star = Path{{st}, 4.0};
  const auto exact = run_exact_attack(problem);
  ASSERT_EQ(exact.status, AttackStatus::Success);
  EXPECT_DOUBLE_EQ(exact.total_cost, 2.0);  // cut at + sb
  (void)at;
  (void)sb;
}

TEST(ExactAttack, NeverCostlierThanApproximations) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(20, 80, rng);
    const NodeId s(0);
    const NodeId t(19);
    const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 8);
    if (ranked.size() < 8) continue;
    std::vector<double> costs;
    for (std::size_t i = 0; i < wg.g.num_edges(); ++i) costs.push_back(rng.uniform(0.5, 3.0));

    ForcePathCutProblem problem;
    problem.graph = &wg.g;
    problem.weights = wg.weights;
    problem.costs = costs;
    problem.source = s;
    problem.target = t;
    problem.p_star = ranked[7];
    problem.seed_paths.assign(ranked.begin(), ranked.begin() + 7);

    const auto exact = run_exact_attack(problem);
    ASSERT_EQ(exact.status, AttackStatus::Success) << "seed " << seed;
    EXPECT_TRUE(verify_attack(problem, exact.removed_edges).ok) << "seed " << seed;
    for (Algorithm algorithm : kAllAlgorithms) {
      const auto approx = run_attack(algorithm, problem);
      ASSERT_EQ(approx.status, AttackStatus::Success);
      EXPECT_LE(exact.total_cost, approx.total_cost + 1e-9)
          << "seed " << seed << " vs " << to_string(algorithm);
    }
  }
}

TEST(ExactAttack, BudgetSemantics) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = costs;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = Path{{d.st}, 4.0};
  problem.budget = 1.0;
  EXPECT_EQ(run_exact_attack(problem).status, AttackStatus::BudgetExceeded);
}

TEST(ExactAttack, InfeasibleWhenFullyProtected) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = costs;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = Path{{d.st}, 4.0};
  problem.protected_edges.assign(d.wg.g.num_edges(), 1);
  EXPECT_EQ(run_exact_attack(problem).status, AttackStatus::Infeasible);
}

}  // namespace
}  // namespace mts::attack
