#include "attack/interdiction.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "graph/dijkstra.hpp"
#include "test_util.hpp"

namespace mts::attack {
namespace {

using test::Diamond;

TEST(Interdiction, DiamondForcesDetours) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  const auto result = interdict_route(d.wg.g, d.wg.weights, costs, d.s, d.t, 2.0);
  // Best moves: break the 2.0 arm (dist -> 3.0), then the 3.0 arm (-> 4.0).
  EXPECT_DOUBLE_EQ(result.baseline_distance, 2.0);
  EXPECT_DOUBLE_EQ(result.final_distance, 4.0);
  EXPECT_EQ(result.removed_edges.size(), 2u);
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
}

TEST(Interdiction, KeepConnectedNeverDisconnects) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  const auto result = interdict_route(d.wg.g, d.wg.weights, costs, d.s, d.t, 100.0);
  // All three disjoint routes: at most 2 can be cut while staying connected.
  EXPECT_DOUBLE_EQ(result.final_distance, 4.0);
  EXPECT_LE(result.removed_edges.size(), 4u);
  EdgeFilter filter(d.wg.g.num_edges());
  for (EdgeId e : result.removed_edges) filter.remove(e);
  EXPECT_LT(shortest_distance(d.wg.g, d.wg.weights, d.s, d.t, &filter), kInfiniteDistance);
}

TEST(Interdiction, DisconnectionAllowedWhenRequested) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  InterdictionOptions options;
  options.keep_connected = false;
  const auto result = interdict_route(d.wg.g, d.wg.weights, costs, d.s, d.t, 100.0, options);
  EXPECT_EQ(result.final_distance, kInfiniteDistance);
}

TEST(Interdiction, BudgetIsRespected) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 3.0);
  const auto result = interdict_route(d.wg.g, d.wg.weights, costs, d.s, d.t, 4.0);
  EXPECT_LE(result.total_cost, 4.0);
  EXPECT_EQ(result.removed_edges.size(), 1u);  // second removal would cost 6
  EXPECT_DOUBLE_EQ(result.final_distance, 3.0);
}

TEST(Interdiction, ZeroBudgetRemovesNothing) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  const auto result = interdict_route(d.wg.g, d.wg.weights, costs, d.s, d.t, 0.0);
  EXPECT_TRUE(result.removed_edges.empty());
  EXPECT_DOUBLE_EQ(result.delay_factor(), 1.0);
}

TEST(Interdiction, ThrowsWhenUnreachable) {
  DiGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.finalize();
  const std::vector<double> w;
  EXPECT_THROW(interdict_route(g, w, w, a, b, 1.0), PreconditionViolation);
}

TEST(Interdiction, GreedyBeatsOrMatchesBetweennessOnCities) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.2, 21);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);

  Rng rng(5);
  int compared = 0;
  double greedy_total = 0.0;
  double betweenness_total = 0.0;
  for (int trial = 0; trial < 6; ++trial) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t = network.pois()[static_cast<std::size_t>(trial) % 4].node;
    if (shortest_distance(g, weights, s, t) == kInfiniteDistance) continue;

    InterdictionOptions greedy_options;
    const auto greedy = interdict_route(g, weights, costs, s, t, 6.0, greedy_options);
    InterdictionOptions b_options;
    b_options.strategy = InterdictionStrategy::Betweenness;
    const auto betweenness = interdict_route(g, weights, costs, s, t, 6.0, b_options);
    greedy_total += greedy.delay_factor();
    betweenness_total += betweenness.delay_factor();
    EXPECT_GE(greedy.final_distance, greedy.baseline_distance);
    EXPECT_GE(betweenness.final_distance, betweenness.baseline_distance);
    ++compared;
  }
  ASSERT_GE(compared, 4);
  // The exact marginal-gain greedy should dominate the cheap heuristic in
  // aggregate (allow a tiny slack for ties).
  EXPECT_GE(greedy_total, betweenness_total - 0.05);
}

TEST(Interdiction, DelayFactorMonotoneInBudget) {
  const auto network = citygen::generate_city(citygen::City::Boston, 0.2, 31);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);
  const NodeId s = network.intersection_nodes().front();
  const NodeId t = network.pois().front().node;

  double previous = 1.0;
  for (double budget : {0.0, 2.0, 4.0, 8.0}) {
    const auto result = interdict_route(g, weights, costs, s, t, budget);
    EXPECT_GE(result.delay_factor() + 1e-12, previous) << "budget " << budget;
    previous = result.delay_factor();
  }
}

}  // namespace
}  // namespace mts::attack
