#include "attack/verify.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mts::attack {
namespace {

using test::Diamond;

ForcePathCutProblem diamond_problem(const Diamond& d, Path p_star) {
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = d.wg.weights;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = std::move(p_star);
  return problem;
}

TEST(Verify, AcceptsCorrectCut) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.st}, 4.0});
  const auto report = verify_attack(problem, {d.sa, d.sb});
  EXPECT_TRUE(report.ok) << report.reason;
}

TEST(Verify, RejectsIncompleteCut) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.st}, 4.0});
  const auto report = verify_attack(problem, {d.sa});  // b-arm still beats p*
  EXPECT_FALSE(report.ok);
}

TEST(Verify, RejectsEmptyCutWhenPStarNotShortest) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.st}, 4.0});
  EXPECT_FALSE(verify_attack(problem, {}).ok);
}

TEST(Verify, RejectsCutTouchingPStar) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.st}, 4.0});
  const auto report = verify_attack(problem, {d.st, d.sa, d.sb});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.reason.find("lies on p*"), std::string::npos);
}

TEST(Verify, RejectsTiedAlternative) {
  Diamond d;
  // Tie both arms at 2, force the a-arm, cut nothing relevant.
  std::vector<double> weights = d.wg.weights;
  weights[d.sb.value()] = 1.0;
  weights[d.bt.value()] = 1.0;
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = weights;
  problem.costs = weights;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = Path{{d.sa, d.at}, 2.0};
  EXPECT_FALSE(verify_attack(problem, {}).ok);       // tied twin exists
  EXPECT_TRUE(verify_attack(problem, {d.sb}).ok);    // tie broken
  EXPECT_TRUE(verify_attack(problem, {d.bt}).ok);
}

TEST(Verify, RejectsNonPathPStar) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.at, d.sa}, 2.0});
  const auto report = verify_attack(problem, {});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.reason.find("not a simple"), std::string::npos);
}

TEST(Verify, AcceptsShortestPathAsPStarWithNoCut) {
  Diamond d;
  const auto problem = diamond_problem(d, Path{{d.sa, d.at}, 2.0});
  EXPECT_TRUE(verify_attack(problem, {}).ok);
}

}  // namespace
}  // namespace mts::attack
