#include "attack/defense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "attack/verify.hpp"
#include "core/error.hpp"
#include "graph/yen.hpp"
#include "test_util.hpp"

namespace mts::attack {
namespace {

using test::Diamond;

ForcePathCutProblem diamond_problem(const Diamond& d) {
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  static const std::vector<double> costs(5, 1.0);
  problem.costs = costs;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = Path{{d.st}, 4.0};
  return problem;
}

TEST(ProtectedEdges, AttackAvoidsProtectedEdges) {
  Diamond d;
  auto problem = diamond_problem(d);
  problem.protected_edges.assign(d.wg.g.num_edges(), 0);
  problem.protected_edges[d.sa.value()] = 1;  // the a-arm entrance is hardened

  for (Algorithm algorithm : kAllAlgorithms) {
    const auto result = run_attack(algorithm, problem);
    ASSERT_EQ(result.status, AttackStatus::Success) << to_string(algorithm);
    for (EdgeId e : result.removed_edges) EXPECT_NE(e, d.sa);
    EXPECT_TRUE(verify_attack(problem, result.removed_edges).ok);
  }
}

TEST(ProtectedEdges, FullyProtectedPathMakesAttackInfeasible) {
  Diamond d;
  auto problem = diamond_problem(d);
  problem.protected_edges.assign(d.wg.g.num_edges(), 0);
  // Protect both edges of both cheap arms: p* (the direct edge) can never
  // become exclusively shortest.
  problem.protected_edges[d.sa.value()] = 1;
  problem.protected_edges[d.at.value()] = 1;
  problem.protected_edges[d.sb.value()] = 1;
  problem.protected_edges[d.bt.value()] = 1;

  for (Algorithm algorithm : kAllAlgorithms) {
    const auto result = run_attack(algorithm, problem);
    EXPECT_EQ(result.status, AttackStatus::Infeasible) << to_string(algorithm);
  }
}

TEST(ProtectedEdges, SizeMismatchRejected) {
  Diamond d;
  auto problem = diamond_problem(d);
  problem.protected_edges.assign(2, 0);
  EXPECT_THROW(run_attack(Algorithm::GreedyEdge, problem), PreconditionViolation);
}

TEST(Defense, HardeningDiamondBlocksAttack) {
  Diamond d;
  const auto problem = diamond_problem(d);
  const auto defense = harden_against_force_path_cut(problem, 4);
  EXPECT_DOUBLE_EQ(defense.initial_attack_cost, 2.0);  // one edge per arm
  // Protecting one edge of each arm makes forcing the slow direct road
  // impossible.
  EXPECT_TRUE(defense.attack_blocked);
  EXPECT_LE(defense.protected_edges.size(), 2u);
  EXPECT_TRUE(std::isinf(defense.final_attack_cost));
}

TEST(Defense, RoundsAreMonotoneNonDecreasing) {
  auto wg = test::make_grid(4, 4, 1.0, 1.31);
  const NodeId s(0);
  const NodeId t(15);
  const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 8);
  ASSERT_GE(ranked.size(), 8u);
  const std::vector<double> costs(wg.g.num_edges(), 1.0);

  ForcePathCutProblem problem;
  problem.graph = &wg.g;
  problem.weights = wg.weights;
  problem.costs = costs;
  problem.source = s;
  problem.target = t;
  problem.p_star = ranked[7];
  problem.seed_paths.assign(ranked.begin(), ranked.begin() + 7);

  const auto defense = harden_against_force_path_cut(problem, 3);
  EXPECT_GT(defense.initial_attack_cost, 0.0);
  double previous = defense.initial_attack_cost;
  for (const auto& round : defense.rounds) {
    EXPECT_GE(round.attack_cost_after, round.attack_cost_before - 1e-9);
    EXPECT_NEAR(round.attack_cost_before, previous, 1e-9);
    previous = round.attack_cost_after;
  }
  EXPECT_GE(defense.final_attack_cost, defense.initial_attack_cost);
}

TEST(Defense, ZeroRoundsIsBaselineOnly) {
  Diamond d;
  const auto defense = harden_against_force_path_cut(diamond_problem(d), 0);
  EXPECT_TRUE(defense.protected_edges.empty());
  EXPECT_DOUBLE_EQ(defense.final_attack_cost, defense.initial_attack_cost);
}

TEST(Defense, RejectsPreProtectedProblem) {
  Diamond d;
  auto problem = diamond_problem(d);
  problem.protected_edges.assign(d.wg.g.num_edges(), 0);
  EXPECT_THROW(harden_against_force_path_cut(problem, 1), PreconditionViolation);
}

}  // namespace
}  // namespace mts::attack
