#include "attack/area_isolation.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "graph/connectivity.hpp"
#include "graph/edge_filter.hpp"
#include "test_util.hpp"

namespace mts::attack {
namespace {

/// Applies a cut and checks whether any outside node can still reach any
/// area node (inbound) or vice versa (outbound).
bool still_connected(const DiGraph& g, const std::vector<EdgeId>& cut,
                     const std::vector<std::uint8_t>& in_area, bool inbound) {
  EdgeFilter filter(g.num_edges());
  for (EdgeId e : cut) filter.remove(e);
  for (NodeId u : g.nodes()) {
    if (in_area[u.value()] == (inbound ? 1 : 0)) continue;  // pick outside (inbound) nodes
    const auto reach = reachable_from(g, u, &filter);
    for (NodeId v : g.nodes()) {
      if (in_area[v.value()] == (inbound ? 0 : 1)) continue;
      if (reach[v.value()]) return true;
    }
  }
  return false;
}

TEST(AreaIsolation, IsolatesGridCorner) {
  auto wg = test::make_grid(4, 4);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  std::vector<std::uint8_t> area(wg.g.num_nodes(), 0);
  area[0] = 1;  // corner node, in-degree 2
  const auto result = isolate_area(wg.g, costs, area, IsolationDirection::Inbound);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
  EXPECT_FALSE(still_connected(wg.g, result.cut_edges, area, /*inbound=*/true));
}

TEST(AreaIsolation, OutboundDirection) {
  auto wg = test::make_grid(4, 4);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  std::vector<std::uint8_t> area(wg.g.num_nodes(), 0);
  area[0] = 1;
  const auto result = isolate_area(wg.g, costs, area, IsolationDirection::Outbound);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
  EXPECT_FALSE(still_connected(wg.g, result.cut_edges, area, /*inbound=*/false));
}

TEST(AreaIsolation, CostWeightedCutAvoidsExpensiveRoads) {
  // Two roads into a 1-node area: one cheap, one expensive; min cut takes
  // both but its cost is their sum, not uniform.
  DiGraph g;
  const NodeId out1 = g.add_node();
  const NodeId out2 = g.add_node();
  const NodeId in = g.add_node();
  g.add_edge(out1, in);
  g.add_edge(out2, in);
  g.finalize();
  const std::vector<double> costs = {1.0, 5.0};
  std::vector<std::uint8_t> area = {0, 0, 1};
  const auto result = isolate_area(g, costs, area);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, 6.0);
  EXPECT_EQ(result.cut_edges.size(), 2u);
}

TEST(AreaIsolation, DefaultSemanticsBlockEveryOutsideOrigin) {
  // outside -> chokepoint -> {a, b} area.  With no origin restriction the
  // chokepoint itself is a potential traffic origin, so both area
  // entrances must go (cost 8) — cutting only the upstream edge would
  // still let a vehicle parked at the chokepoint drive in.
  DiGraph g;
  const NodeId outside = g.add_node();
  const NodeId choke = g.add_node();
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(outside, choke);
  g.add_edge(choke, a);
  g.add_edge(choke, b);
  g.finalize();
  const std::vector<double> costs = {1.0, 4.0, 4.0};
  std::vector<std::uint8_t> area = {0, 0, 1, 1};
  const auto result = isolate_area(g, costs, area);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, 8.0);
  EXPECT_EQ(result.cut_edges.size(), 2u);
}

TEST(AreaIsolation, OriginMaskEnablesCheaperUpstreamCut) {
  // Same topology, but traffic can only originate at `outside` (e.g. the
  // only highway entrance): the cheap upstream chokepoint cut suffices.
  DiGraph g;
  const NodeId outside = g.add_node();
  const NodeId choke = g.add_node();
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId oc = g.add_edge(outside, choke);
  g.add_edge(choke, a);
  g.add_edge(choke, b);
  g.finalize();
  const std::vector<double> costs = {1.0, 4.0, 4.0};
  std::vector<std::uint8_t> area = {0, 0, 1, 1};
  std::vector<std::uint8_t> origins = {1, 0, 0, 0};
  const auto result =
      isolate_area(g, costs, area, IsolationDirection::Inbound, origins);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, 1.0);
  ASSERT_EQ(result.cut_edges.size(), 1u);
  EXPECT_EQ(result.cut_edges[0], oc);
}

TEST(AreaIsolation, EmptyOrFullAreaInfeasible) {
  auto wg = test::make_grid(3, 3);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  std::vector<std::uint8_t> none(wg.g.num_nodes(), 0);
  EXPECT_FALSE(isolate_area(wg.g, costs, none).feasible);
  std::vector<std::uint8_t> all(wg.g.num_nodes(), 1);
  EXPECT_FALSE(isolate_area(wg.g, costs, all).feasible);
}

TEST(AreaIsolation, CountsReported) {
  auto wg = test::make_grid(3, 3);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  std::vector<std::uint8_t> area(wg.g.num_nodes(), 0);
  area[4] = area[5] = 1;
  const auto result = isolate_area(wg.g, costs, area);
  EXPECT_EQ(result.area_nodes, 2u);
  EXPECT_EQ(result.outside_nodes, 7u);
}

TEST(NodesWithinRadius, EuclideanDisk) {
  auto wg = test::make_grid(5, 5);  // unit spacing
  const auto mask = nodes_within_radius(wg.g, NodeId(12), 1.1);  // center (2,2)
  std::size_t count = 0;
  for (auto f : mask) count += f;
  EXPECT_EQ(count, 5u);  // center + 4 orthogonal neighbors
  EXPECT_TRUE(mask[12]);
  EXPECT_TRUE(mask[7]);
  EXPECT_FALSE(mask[0]);
}

TEST(AreaIsolation, RejectsBadInput) {
  auto wg = test::make_grid(2, 2);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  std::vector<std::uint8_t> short_mask(1, 1);
  EXPECT_THROW(isolate_area(wg.g, costs, short_mask), PreconditionViolation);
}

}  // namespace
}  // namespace mts::attack
