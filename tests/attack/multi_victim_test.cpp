#include "attack/multi_victim.hpp"

#include <gtest/gtest.h>

#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "exp/scenario.hpp"
#include "graph/yen.hpp"
#include "test_util.hpp"

namespace mts::attack {
namespace {

using test::Diamond;

/// Verifies every victim's sub-instance against the shared cut.
void expect_all_forced(const MultiVictimProblem& problem, const MultiVictimResult& result) {
  for (std::size_t i = 0; i < problem.victims.size(); ++i) {
    ForcePathCutProblem sub;
    sub.graph = problem.graph;
    sub.weights = problem.weights;
    sub.costs = problem.costs;
    sub.source = problem.victims[i].source;
    sub.target = problem.victims[i].target;
    sub.p_star = problem.victims[i].p_star;
    const auto verdict = verify_attack(sub, result.removed_edges);
    EXPECT_TRUE(verdict.ok) << "victim " << i << ": " << verdict.reason;
    EXPECT_TRUE(result.victim_forced[i]);
  }
}

TEST(MultiVictim, SingleVictimMatchesSingleAttack) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  MultiVictimProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = costs;
  problem.victims.push_back({d.s, d.t, Path{{d.st}, 4.0}, {}});

  const auto result = run_multi_victim_attack(problem);
  ASSERT_EQ(result.status, AttackStatus::Success);
  EXPECT_EQ(result.removed_edges.size(), 2u);  // one edge per cheap arm
  expect_all_forced(problem, result);
}

TEST(MultiVictim, TwoIndependentVictimsShareOneCut) {
  // Two node-disjoint diamonds in one graph: the shared closure set must
  // force the slow arm in both, 2 removals each.
  test::WeightedGraph wg;
  struct DiamondIds {
    NodeId s, t;
    EdgeId st;
  };
  DiamondIds diamonds[2];
  for (auto& ids : diamonds) {
    const NodeId s = wg.g.add_node();
    const NodeId a = wg.g.add_node();
    const NodeId b = wg.g.add_node();
    const NodeId t = wg.g.add_node();
    wg.edge(s, a, 1.0);
    wg.edge(a, t, 1.0);
    wg.edge(s, b, 1.5);
    wg.edge(b, t, 1.5);
    ids = {s, t, wg.edge(s, t, 4.0)};
  }
  wg.g.finalize();
  std::vector<double> costs(wg.g.num_edges(), 1.0);

  MultiVictimProblem problem;
  problem.graph = &wg.g;
  problem.weights = wg.weights;
  problem.costs = costs;
  for (const auto& ids : diamonds) {
    problem.victims.push_back({ids.s, ids.t, Path{{ids.st}, 4.0}, {}});
  }

  const auto result = run_multi_victim_attack(problem);
  ASSERT_EQ(result.status, AttackStatus::Success) << to_string(result.status);
  expect_all_forced(problem, result);
  EXPECT_EQ(result.removed_edges.size(), 4u);
  EXPECT_DOUBLE_EQ(result.total_cost, 4.0);
}

TEST(MultiVictim, GridVictimsSucceedOrCertifyConflict) {
  // Victims from opposite corners to the same destination on a small grid
  // can genuinely conflict (one victim's p* is another's faster path);
  // the solver must either force both or certify infeasibility — never
  // crash or return an unverified cut.
  auto wg = test::make_grid(4, 4, 1.0, 1.33);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  const NodeId d(15);

  MultiVictimProblem problem;
  problem.graph = &wg.g;
  problem.weights = wg.weights;
  problem.costs = costs;
  for (std::uint32_t source : {0u, 3u}) {
    const auto ranked = yen_ksp(wg.g, wg.weights, NodeId(source), d, 6);
    ASSERT_GE(ranked.size(), 6u);
    Victim victim{NodeId(source), d, ranked[5], {}};
    victim.seed_paths.assign(ranked.begin(), ranked.begin() + 5);
    problem.victims.push_back(std::move(victim));
  }

  const auto result = run_multi_victim_attack(problem);
  if (result.status == AttackStatus::Success) {
    expect_all_forced(problem, result);
  } else {
    EXPECT_EQ(result.status, AttackStatus::Infeasible);
  }
}

TEST(MultiVictim, ConflictingChoicesAreInfeasible) {
  // Tie the diamond arms; victim 1 wants arm A forced, victim 2 wants arm
  // B forced, same (s, t): each victim's p* is the other's violating path
  // and neither can be removed.
  Diamond d;
  std::vector<double> weights = d.wg.weights;
  weights[d.sb.value()] = 1.0;
  weights[d.bt.value()] = 1.0;  // both arms length 2
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);

  MultiVictimProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = weights;
  problem.costs = costs;
  problem.victims.push_back({d.s, d.t, Path{{d.sa, d.at}, 2.0}, {}});
  problem.victims.push_back({d.s, d.t, Path{{d.sb, d.bt}, 2.0}, {}});

  const auto result = run_multi_victim_attack(problem);
  EXPECT_EQ(result.status, AttackStatus::Infeasible);
}

TEST(MultiVictim, BudgetExceededReported) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  MultiVictimProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = costs;
  problem.victims.push_back({d.s, d.t, Path{{d.st}, 4.0}, {}});
  problem.budget = 1.0;  // needs 2
  const auto result = run_multi_victim_attack(problem);
  EXPECT_EQ(result.status, AttackStatus::BudgetExceeded);
}

TEST(MultiVictim, RejectsEmptyAndMismatched) {
  Diamond d;
  MultiVictimProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = d.wg.weights;
  EXPECT_THROW(run_multi_victim_attack(problem), PreconditionViolation);
}

TEST(MultiVictim, CityScaleFourVictimsOneHospital) {
  // The paper's coordination story: several victims, one hospital, one
  // pre-planned closure set.
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.2, 55);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);

  Rng rng(9);
  exp::ScenarioOptions options;
  options.path_rank = 10;
  MultiVictimProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  for (int i = 0; i < 6 && problem.victims.size() < 3; ++i) {
    const auto scenario = exp::sample_scenario(network, weights, 0, rng, options);
    if (!scenario) continue;
    // Victims to the same hospital from different random sources.
    bool duplicate = false;
    for (const auto& v : problem.victims) duplicate |= v.source == scenario->source;
    if (duplicate) continue;
    problem.victims.push_back(
        {scenario->source, scenario->target, scenario->p_star, scenario->prefix});
  }
  ASSERT_GE(problem.victims.size(), 2u);

  const auto result = run_multi_victim_attack(problem);
  if (result.status == AttackStatus::Success) {
    expect_all_forced(problem, result);
    EXPECT_GT(result.removed_edges.size(), 0u);
  } else {
    // Victim routes can genuinely conflict; the only acceptable
    // alternative outcome is a certified conflict.
    EXPECT_EQ(result.status, AttackStatus::Infeasible);
  }
}

}  // namespace
}  // namespace mts::attack
