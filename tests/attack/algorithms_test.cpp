#include "attack/algorithms.hpp"

#include <gtest/gtest.h>

#include "attack/verify.hpp"
#include "core/error.hpp"
#include "graph/yen.hpp"
#include "test_util.hpp"

namespace mts::attack {
namespace {

using test::Diamond;

ForcePathCutProblem make_problem(const DiGraph& g, std::span<const double> weights,
                                 std::span<const double> costs, NodeId s, NodeId t,
                                 Path p_star) {
  ForcePathCutProblem problem;
  problem.graph = &g;
  problem.weights = weights;
  problem.costs = costs;
  problem.source = s;
  problem.target = t;
  problem.p_star = std::move(p_star);
  return problem;
}

class AllAlgorithms : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Attack, AllAlgorithms, ::testing::ValuesIn(kAllAlgorithms),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST_P(AllAlgorithms, ForcesSlowDiamondArm) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  const auto problem =
      make_problem(d.wg.g, d.wg.weights, costs, d.s, d.t, Path{{d.st}, 4.0});
  const auto result = run_attack(GetParam(), problem);
  ASSERT_EQ(result.status, AttackStatus::Success);
  // Both cheaper arms must be broken: at least one edge from each.
  EXPECT_EQ(result.num_removed(), 2u);
  EXPECT_TRUE(verify_attack(problem, result.removed_edges).ok);
}

TEST_P(AllAlgorithms, NeverRemovesPStarEdges) {
  auto wg = test::make_grid(4, 4, 1.0, 1.37);
  const NodeId s(0);
  const NodeId t(15);
  const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 12);
  ASSERT_GE(ranked.size(), 12u);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  auto problem = make_problem(wg.g, wg.weights, costs, s, t, ranked[11]);
  problem.seed_paths.assign(ranked.begin(), ranked.begin() + 11);

  const auto result = run_attack(GetParam(), problem);
  ASSERT_EQ(result.status, AttackStatus::Success);
  for (EdgeId removed : result.removed_edges) {
    for (EdgeId keep : problem.p_star.edges) EXPECT_NE(removed, keep);
  }
  EXPECT_TRUE(verify_attack(problem, result.removed_edges).ok);
}

TEST_P(AllAlgorithms, AlreadyExclusiveNeedsNoRemovals) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  const auto problem =
      make_problem(d.wg.g, d.wg.weights, costs, d.s, d.t, Path{{d.sa, d.at}, 2.0});
  const auto result = run_attack(GetParam(), problem);
  EXPECT_EQ(result.status, AttackStatus::Success);
  EXPECT_EQ(result.num_removed(), 0u);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST_P(AllAlgorithms, BudgetZeroFailsWhenCutNeeded) {
  Diamond d;
  std::vector<double> costs(d.wg.g.num_edges(), 1.0);
  auto problem = make_problem(d.wg.g, d.wg.weights, costs, d.s, d.t, Path{{d.st}, 4.0});
  problem.budget = 0.5;
  const auto result = run_attack(GetParam(), problem);
  EXPECT_EQ(result.status, AttackStatus::BudgetExceeded);
}

TEST_P(AllAlgorithms, SucceedsOnTiedWeights) {
  // Perfect grid with all-equal weights: massive tie structure.
  auto wg = test::make_grid(3, 3);
  const NodeId s(0);
  const NodeId t(8);
  const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 8);
  ASSERT_GE(ranked.size(), 8u);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  auto problem = make_problem(wg.g, wg.weights, costs, s, t, ranked[7]);
  problem.seed_paths.assign(ranked.begin(), ranked.begin() + 7);
  const auto result = run_attack(GetParam(), problem);
  ASSERT_EQ(result.status, AttackStatus::Success) << to_string(result.status);
  EXPECT_TRUE(verify_attack(problem, result.removed_edges).ok);
}

TEST_P(AllAlgorithms, RandomGraphsAlwaysVerified) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    auto wg = test::make_random_graph(25, 100, rng);
    const NodeId s(0);
    const NodeId t(24);
    const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 10);
    if (ranked.size() < 10) continue;
    std::vector<double> costs;
    for (std::size_t i = 0; i < wg.g.num_edges(); ++i) costs.push_back(rng.uniform(0.5, 3.0));
    auto problem = make_problem(wg.g, wg.weights, costs, s, t, ranked[9]);
    problem.seed_paths.assign(ranked.begin(), ranked.begin() + 9);
    const auto result = run_attack(GetParam(), problem);
    ASSERT_EQ(result.status, AttackStatus::Success) << "seed " << seed;
    const auto verdict = verify_attack(problem, result.removed_edges);
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.reason;
    EXPECT_GT(result.oracle_calls, 0u);
  }
}

TEST(PathCoverComparison, LpNeverWorseThanNaiveOnDiamondChain) {
  // Chain of diamonds where GreedyEdge picks the lightest edge (which is
  // expensive to remove) while cover-based methods pick the cheap cut.
  DiGraph g;
  const NodeId s = g.add_node();
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId t = g.add_node();
  const EdgeId sa = g.add_edge(s, a);
  const EdgeId at = g.add_edge(a, t);
  const EdgeId sb = g.add_edge(s, b);
  const EdgeId bt = g.add_edge(b, t);
  const EdgeId st = g.add_edge(s, t);
  g.finalize();
  const std::vector<double> weights = {0.5, 0.5, 1.5, 1.5, 4.0};
  // The light edge sa is very expensive to cut; at is cheap.
  std::vector<double> costs(g.num_edges(), 1.0);
  costs[sa.value()] = 10.0;
  costs[at.value()] = 1.0;
  costs[sb.value()] = 1.0;
  costs[bt.value()] = 9.0;

  auto problem = make_problem(g, weights, costs, s, t, Path{{st}, 4.0});
  const auto lp = run_attack(Algorithm::LpPathCover, problem);
  const auto greedy_cover = run_attack(Algorithm::GreedyPathCover, problem);
  const auto greedy_edge = run_attack(Algorithm::GreedyEdge, problem);
  ASSERT_EQ(lp.status, AttackStatus::Success);
  ASSERT_EQ(greedy_cover.status, AttackStatus::Success);
  ASSERT_EQ(greedy_edge.status, AttackStatus::Success);
  EXPECT_DOUBLE_EQ(lp.total_cost, 2.0);           // cut at + sb
  EXPECT_DOUBLE_EQ(greedy_cover.total_cost, 2.0);
  EXPECT_DOUBLE_EQ(greedy_edge.total_cost, 11.0);  // lightest edges: sa, sb
  EXPECT_LE(lp.lp_lower_bound, lp.total_cost + 1e-9);
}

TEST(RunAttack, RejectsSizeMismatches) {
  Diamond d;
  std::vector<double> short_costs = {1.0};
  ForcePathCutProblem problem;
  problem.graph = &d.wg.g;
  problem.weights = d.wg.weights;
  problem.costs = short_costs;
  problem.source = d.s;
  problem.target = d.t;
  problem.p_star = Path{{d.st}, 4.0};
  EXPECT_THROW(run_attack(Algorithm::GreedyEdge, problem), PreconditionViolation);
}

TEST(RunAttack, SeedPathsSpeedUpPathCover) {
  auto wg = test::make_grid(5, 5, 1.0, 1.29);
  const NodeId s(0);
  const NodeId t(24);
  const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 20);
  ASSERT_GE(ranked.size(), 20u);
  std::vector<double> costs(wg.g.num_edges(), 1.0);

  auto seeded = make_problem(wg.g, wg.weights, costs, s, t, ranked[19]);
  seeded.seed_paths.assign(ranked.begin(), ranked.begin() + 19);
  auto unseeded = make_problem(wg.g, wg.weights, costs, s, t, ranked[19]);

  const auto with_seeds = run_attack(Algorithm::GreedyPathCover, seeded);
  const auto without_seeds = run_attack(Algorithm::GreedyPathCover, unseeded);
  ASSERT_EQ(with_seeds.status, AttackStatus::Success);
  ASSERT_EQ(without_seeds.status, AttackStatus::Success);
  // Seeds replace oracle discoveries one-for-one (or better).
  EXPECT_LE(with_seeds.oracle_calls, without_seeds.oracle_calls);
  EXPECT_TRUE(verify_attack(seeded, with_seeds.removed_edges).ok);
  EXPECT_TRUE(verify_attack(unseeded, without_seeds.removed_edges).ok);
}

TEST(RunAttack, ResultsAreDeterministicForFixedSeed) {
  auto wg = test::make_grid(4, 4, 1.0, 1.21);
  const NodeId s(0);
  const NodeId t(15);
  const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 10);
  ASSERT_GE(ranked.size(), 10u);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  auto problem = make_problem(wg.g, wg.weights, costs, s, t, ranked[9]);
  problem.seed_paths.assign(ranked.begin(), ranked.begin() + 9);

  AttackOptions options;
  options.rng_seed = 77;
  const auto a = run_attack(Algorithm::LpPathCover, problem, options);
  const auto b = run_attack(Algorithm::LpPathCover, problem, options);
  EXPECT_EQ(a.removed_edges, b.removed_edges);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

TEST_P(AllAlgorithms, TinyWorkBudgetYieldsStructuredExhaustion) {
  // A one-edge Dijkstra cap cannot even finish the first oracle query; the
  // exhaustion must surface as a structured status, never an exception.
  auto wg = test::make_grid(4, 4, 1.0, 1.37);
  const NodeId s(0);
  const NodeId t(15);
  const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 8);
  ASSERT_GE(ranked.size(), 8u);
  std::vector<double> costs(wg.g.num_edges(), 1.0);
  const auto problem = make_problem(wg.g, wg.weights, costs, s, t, ranked[7]);

  AttackOptions options;
  options.work_budget.max_edges_scanned = 1;
  const auto result = run_attack(GetParam(), problem, options);
  EXPECT_EQ(result.status, AttackStatus::BudgetExhausted);
  EXPECT_STREQ(to_string(result.status), "budget-exhausted");
  EXPECT_TRUE(result.removed_edges.empty());
}

}  // namespace
}  // namespace mts::attack
