#!/usr/bin/env python3
"""Repo lint: mechanical correctness rules the compiler does not enforce.

Run directly (`python3 tools/lint.py`) or via the `lint` ctest entry.
Exits non-zero after printing every violation as `path:line: [rule] message`.

Rules (see DESIGN.md "Correctness tooling"):
  pragma-once      every header starts include protection with #pragma once
  no-rand          no C rand()/srand()/std::rand — use mts::Rng (deterministic,
                   seedable; experiment reproducibility depends on it)
  no-naked-new     no `new`/`delete` expressions — containers and
                   std::unique_ptr own everything in this codebase
  no-float         no `float` in library code — all weight/cost/geometry math
                   is double; float silently loses the paper's tie margins
  require-throws   `throw PreconditionViolation` appears only inside
                   mts::require (core/error.hpp); API boundaries call require()
                   so every violation carries file:line context
  no-using-ns      no `using namespace` at header scope
  no-const-cast-top
                   no `const_cast` on a container's `.top()`/`.front()` —
                   mutating through a const accessor reference is UB-adjacent
                   and breaks heap/queue invariants silently; use a container
                   that supports a real move-out (e.g. a vector heap with
                   std::pop_heap, as graph/yen.cpp does)
  no-raw-clock     no direct std::chrono clock reads outside core/timer.hpp
                   and src/obs/ — all reported durations must flow through
                   mts::Stopwatch/reported_seconds so MTS_TIMING=0 stays
                   authoritative (deterministic output depends on it)
  no-bare-catch    every `catch (...)` in library code must rethrow
                   (`throw;`), capture std::current_exception() for a later
                   rethrow, or record the failure through
                   mts::current_exception_taxonomy() — silently swallowing
                   an unknown exception hides injected faults and real bugs
                   alike (src/core/error.cpp, the taxonomy implementation,
                   is the one legitimate bare sink)
  no-search-alloc  the point-to-point search engines (dijkstra/astar/
                   bidirectional + search_space itself) must not size a
                   container to num_nodes per call — per-search storage
                   lives in the epoch-stamped SearchSpace precisely so the
                   Yen/oracle hot loops stop allocating (DESIGN.md §9)
  no-raw-getenv    no direct std::getenv in library code — every MTS_* knob
                   flows through mts::env_raw / env_int / env_string
                   (core/env.hpp), the single audited entry point for
                   environment-dependent behaviour
  no-mutable-global
                   no mutable namespace-scope state in library code outside
                   the registered enabled-flag singletons (obs/fault/timer
                   overrides) — hidden globals are where cross-thread and
                   cross-run nondeterminism breeds.  thread_local state and
                   const/constexpr values are exempt; everything else
                   belongs behind a function-local static accessor
                   (core/thread_pool.cpp's global_pool() is the pattern)
  no-unordered-output
                   no range-for iteration over a std::unordered_map/set in
                   library code — byte-deterministic stdout/CSV/JSON
                   depends on ordered emission, and hash-order iteration is
                   the classic leak.  Provably order-insensitive folds
                   (e.g. merging into a std::map) carry a suppression
  ci-workflow      .github/workflows/ci.yml parses as YAML and carries a
                   job matrix covering every ci.sh leg (dev, asan, tsan)
                   plus the tidy gate, so the hosted gate can never
                   silently drop a preset

Suppressions: a line (or the line directly above it) containing
`mts-lint: allow(<rule>)` exempts that line from <rule>.  Every suppression
must state its justification in the same comment; DESIGN.md §11 documents
the policy.

Incremental mode: `--files a.cpp b.hpp` restricts every file-scoped rule to
the given paths (pre-commit hooks and editor integrations stay fast as the
repo grows); the ci-workflow rule then runs only when the workflow file is
among them.  Violations are reported in stable (path, line, rule) order in
both modes.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories scanned per rule.  Library rules are strict; tests/bench may
# legitimately differ (e.g. gtest internals), so each rule names its scope.
LIB_DIRS = ["src"]
ALL_DIRS = ["src", "tests", "bench", "examples"]

CXX_SUFFIXES = {".cpp", ".hpp"}


def strip_code(text: str) -> str:
    """Removes comments, string literals, and char literals, preserving line
    structure so reported line numbers stay exact.  Handles // and block
    comments, escapes, and R"delim(...)delim" raw strings."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch == "R" and nxt == '"':
            open_paren = text.find("(", i + 2)
            if open_paren == -1:
                i += 1
                continue
            delim = text[i + 2 : open_paren]
            closer = ")" + delim + '"'
            end = text.find(closer, open_paren + 1)
            end = n if end == -1 else end + len(closer)
            out.extend(c if c == "\n" else "" for c in text[i:end])
            i = end
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; bail at line end
                    break
                i += 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


# Registered mutable-global singletons: the lazily-initialized enabled
# flags of the observability/fault/timing layers.  Everything else at
# namespace scope must be const, thread_local, or refactored behind a
# function-local static accessor.
MUTABLE_GLOBAL_ALLOW = {
    ("src/obs/metrics.hpp", "g_metrics_override"),
    ("src/obs/metrics.hpp", "g_trace_override"),
    ("src/core/fault.hpp", "g_faults_override"),
    ("src/core/timer.hpp", "g_timing_override"),
}

SUPPRESS_RE = re.compile(r"mts-lint:\s*allow\(([a-z0-9-]+)\)")


class Linter:
    def __init__(self, root: Path, only_files: list[Path] | None = None) -> None:
        self.root = root
        self.violations: list[tuple[Path, int, str, str]] = []
        self.only_files: set[Path] | None = None
        if only_files is not None:
            self.only_files = set()
            for p in only_files:
                resolved = p if p.is_absolute() else (root / p)
                self.only_files.add(resolved.resolve())
        self._suppression_cache: dict[Path, dict[int, set[str]]] = {}

    def suppressions(self, path: Path) -> dict[int, set[str]]:
        """Line -> rules allowed there, from `mts-lint: allow(rule)` comments
        (a comment suppresses its own line and the line below it)."""
        cached = self._suppression_cache.get(path)
        if cached is not None:
            return cached
        allowed: dict[int, set[str]] = {}
        if not path.is_file():
            self._suppression_cache[path] = allowed
            return allowed
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for match in SUPPRESS_RE.finditer(line):
                rule = match.group(1)
                allowed.setdefault(lineno, set()).add(rule)
                allowed.setdefault(lineno + 1, set()).add(rule)
        self._suppression_cache[path] = allowed
        return allowed

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        if rule in self.suppressions(path).get(line, set()):
            return
        self.violations.append((path, line, rule, message))

    def files(self, dirs: list[str], suffixes: set[str]) -> list[Path]:
        found: list[Path] = []
        for d in dirs:
            base = self.root / d
            if base.is_dir():
                found.extend(p for p in sorted(base.rglob("*")) if p.suffix in suffixes)
        if self.only_files is not None:
            found = [p for p in found if p.resolve() in self.only_files]
        return found

    def match_lines(self, stripped: str, pattern: re.Pattern[str]):
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            if pattern.search(line):
                yield lineno, line.strip()

    # --- rules ----------------------------------------------------------

    def check_pragma_once(self) -> None:
        for path in self.files(ALL_DIRS, {".hpp"}):
            if "#pragma once" not in path.read_text():
                self.report(path, 1, "pragma-once", "header is missing #pragma once")

    def check_no_rand(self) -> None:
        pattern = re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\(")
        for path in self.files(ALL_DIRS, CXX_SUFFIXES):
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "no-rand",
                            f"C rand() is banned; use mts::Rng: {line}")

    def check_no_naked_new(self) -> None:
        # `= delete`d functions and member names like `new_x` are not
        # new/delete expressions; everything else is.
        new_pattern = re.compile(r"\bnew\b(?!\w)")
        delete_pattern = re.compile(r"\bdelete\b(?!\w)")
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            stripped = strip_code(path.read_text())
            stripped = re.sub(r"=\s*delete\b", "", stripped)
            # Preprocessor lines (#include <new>) are not expressions.
            stripped = re.sub(r"(?m)^\s*#.*$", "", stripped)
            for lineno, line in self.match_lines(stripped, new_pattern):
                self.report(path, lineno, "no-naked-new",
                            f"naked new; use containers/std::make_unique: {line}")
            for lineno, line in self.match_lines(stripped, delete_pattern):
                self.report(path, lineno, "no-naked-new",
                            f"naked delete; let owners manage lifetime: {line}")

    def check_no_float(self) -> None:
        pattern = re.compile(r"\bfloat\b")
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "no-float",
                            f"float in weight/geometry math; use double: {line}")

    def check_require_throws(self) -> None:
        pattern = re.compile(r"\bthrow\s+PreconditionViolation\b")
        allowed = self.root / "src" / "core" / "error.hpp"
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            if path == allowed:
                continue
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "require-throws",
                            f"throw PreconditionViolation directly; call mts::require: {line}")

    def check_no_const_cast_top(self) -> None:
        # One-line matches only (like every rule here); a const_cast wrapping
        # a .top()/.front() call split across lines would slip through, but
        # clang-format keeps these on one line in practice.
        pattern = re.compile(
            r"const_cast\s*<[^<>;{}]*>\s*\([^();{}]*\.\s*(?:top|front)\s*\(\s*\)\s*\)")
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "no-const-cast-top",
                            f"const_cast on .top()/.front(); pop via std::pop_heap "
                            f"on a vector instead: {line}")

    def check_no_bare_catch(self) -> None:
        # A bare catch that neither rethrows nor records the failure turns
        # injected faults (and genuine bugs) into silent wrong answers.  The
        # handler must contain `throw;`, std::current_exception() (deferred
        # rethrow, as the thread pool does), or current_exception_taxonomy()
        # (the error-taxonomy recorder).  core/error.cpp implements the
        # taxonomy's own dispatch ladder, so it is whitelisted.
        allowed = self.root / "src" / "core" / "error.cpp"
        pattern = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
        ok_body = re.compile(r"\bthrow\s*;|\bcurrent_exception")
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            if path == allowed:
                continue
            stripped = strip_code(path.read_text())
            for match in pattern.finditer(stripped):
                lineno = stripped.count("\n", 0, match.start()) + 1
                open_brace = stripped.find("{", match.end())
                body = ""
                if open_brace != -1:
                    depth = 0
                    for j in range(open_brace, len(stripped)):
                        if stripped[j] == "{":
                            depth += 1
                        elif stripped[j] == "}":
                            depth -= 1
                            if depth == 0:
                                body = stripped[open_brace + 1:j]
                                break
                if not ok_body.search(body):
                    self.report(path, lineno, "no-bare-catch",
                                "catch (...) must rethrow or record the error "
                                "(throw; / std::current_exception() / "
                                "mts::current_exception_taxonomy())")

    def check_no_raw_clock(self) -> None:
        # Every duration the repo reports must pass through core/timer.hpp
        # (Stopwatch / reported_seconds) so MTS_TIMING=0 can zero it; the
        # obs layer wraps the clock once for trace timestamps.  Anything
        # else reading a chrono clock bypasses that gate.
        pattern = re.compile(
            r"\b(?:steady_clock|high_resolution_clock|system_clock)\s*::\s*now\b")
        timer = self.root / "src" / "core" / "timer.hpp"
        obs_dir = self.root / "src" / "obs"
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            if path == timer or obs_dir in path.parents:
                continue
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "no-raw-clock",
                            f"raw chrono clock read; use mts::Stopwatch / "
                            f"reported_seconds (core/timer.hpp): {line}")

    def check_no_using_namespace(self) -> None:
        pattern = re.compile(r"\busing\s+namespace\b")
        for path in self.files(ALL_DIRS, {".hpp"}):
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "no-using-ns",
                            f"using namespace in a header leaks into every includer: {line}")

    def check_no_search_alloc(self) -> None:
        # Scope: the engines the SearchSpace refactor de-allocated.  yen.cpp
        # keeps legitimate per-query scratch (candidate heap, root prefix),
        # so it is deliberately not listed.
        engine_files = ["search_space.cpp", "dijkstra.cpp", "astar.cpp", "bidirectional.cpp"]
        pattern = re.compile(
            r"(?:\.assign\s*\([^;]*num_nodes\s*\(\s*\))|"
            r"(?:std\s*::\s*vector\s*<[^;=]*>\s*\w*\s*[({][^;]*num_nodes\s*\(\s*\))")
        for name in engine_files:
            path = self.root / "src" / "graph" / name
            if not path.is_file():
                continue
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "no-search-alloc",
                            f"per-call num_nodes-sized allocation in a search engine; "
                            f"use the SearchSpace workspace: {line}")

    def check_no_raw_getenv(self) -> None:
        # Every environment read flows through core/env.hpp (env_raw and the
        # typed helpers built on it): MTS_* knobs decide output-affecting
        # behaviour, so their one entry point must stay auditable.  The
        # env_raw implementation itself carries the suppression comment.
        pattern = re.compile(r"\b(?:std\s*::\s*)?(?:secure_)?getenv\s*\(")
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            for lineno, line in self.match_lines(strip_code(path.read_text()), pattern):
                self.report(path, lineno, "no-raw-getenv",
                            f"raw getenv; use mts::env_raw / env_int / env_string "
                            f"(core/env.hpp): {line}")

    def check_no_mutable_global(self) -> None:
        # Namespace-scope mutable state is where cross-thread races and
        # cross-run nondeterminism breed.  Heuristic: clang-format keeps
        # namespace-scope declarations at column 0 (namespaces do not
        # indent), so a column-0 variable declaration without
        # const/constexpr is a mutable global.  thread_local is exempt
        # (per-thread, no cross-thread visibility); function declarations
        # are excluded by the `(`-free requirement (one-line declarations
        # only, like every rule here).
        decl = re.compile(
            r"^(?:inline\s+|static\s+)*"
            r"(?:[A-Za-z_][\w:]*(?:\s*<[^;=]*>)?[\s&*]+)+"
            r"(?P<name>\w+)\s*(?:\{[^{}]*\})?\s*(?:=[^;]*)?;")
        skip = re.compile(
            r"\b(?:const|constexpr|constinit|thread_local|using|typedef|extern|"
            r"return|friend|namespace|struct|class|enum|template|operator)\b")
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            rel = str(path.relative_to(self.root))
            stripped = strip_code(path.read_text())
            stripped = re.sub(r"(?m)^\s*#.*$", "", stripped)
            for lineno, line in enumerate(stripped.splitlines(), start=1):
                if not line or line[0] in " \t}":
                    continue
                if "(" in line or skip.search(line):
                    continue
                match = decl.match(line)
                if not match:
                    continue
                name = match.group("name")
                if (rel, name) in MUTABLE_GLOBAL_ALLOW:
                    continue
                self.report(path, lineno, "no-mutable-global",
                            f"mutable namespace-scope state '{name}'; make it "
                            f"const, thread_local, or a function-local static "
                            f"behind an accessor: {line.strip()}")

    def check_no_unordered_output(self) -> None:
        # Hash-order iteration is the classic byte-determinism leak: an
        # unordered_map walked into a table/CSV/JSON writer emits rows in a
        # different order per process.  Heuristic: flag every range-for over
        # a name declared as std::unordered_map/set in the same file;
        # provably order-insensitive folds carry a suppression comment with
        # justification (the snapshot() phase merge in obs/metrics.cpp is
        # the exemplar).
        decl = re.compile(r"std\s*::\s*unordered_(?:map|set)\s*<[^;{}()]*>\s+(\w+)")
        for path in self.files(LIB_DIRS, CXX_SUFFIXES):
            stripped = strip_code(path.read_text())
            names = set(decl.findall(stripped))
            if not names:
                continue
            alternation = "|".join(re.escape(n) for n in sorted(names))
            loop = re.compile(
                r"for\s*\([^;()]*:\s*[\w.\->]*\b(?:" + alternation + r")\s*\)")
            for lineno, line in self.match_lines(stripped, loop):
                self.report(path, lineno, "no-unordered-output",
                            f"iteration over an unordered container; emit through "
                            f"an ordered structure (or justify with a suppression "
                            f"if the fold is order-insensitive): {line}")

    def check_ci_workflow(self) -> None:
        workflow = self.root / ".github" / "workflows" / "ci.yml"
        if self.only_files is not None and workflow.resolve() not in self.only_files:
            return
        if not workflow.is_file():
            self.report(workflow, 1, "ci-workflow", "missing .github/workflows/ci.yml")
            return
        try:
            import yaml
        except ImportError:
            # PyYAML is in the dev image and on GitHub runners; without it
            # the YAML check degrades to existence-only rather than failing
            # the whole lint gate.
            print("lint: note: PyYAML unavailable, ci-workflow check skipped",
                  file=sys.stderr)
            return
        try:
            doc = yaml.safe_load(workflow.read_text())
        except yaml.YAMLError as err:
            line = getattr(getattr(err, "problem_mark", None), "line", 0) + 1
            self.report(workflow, line, "ci-workflow", f"invalid YAML: {err}")
            return
        jobs = doc.get("jobs") if isinstance(doc, dict) else None
        if not isinstance(jobs, dict) or not jobs:
            self.report(workflow, 1, "ci-workflow", "workflow defines no jobs")
            return
        presets: set[str] = set()
        for job in jobs.values():
            if not isinstance(job, dict):
                continue
            matrix = (job.get("strategy") or {}).get("matrix") or {}
            for value in matrix.get("preset", []):
                presets.add(str(value))
        missing = {"dev", "asan", "tsan"} - presets
        if missing:
            self.report(workflow, 1, "ci-workflow",
                        f"job matrix does not cover ci.sh leg(s): {', '.join(sorted(missing))}")
        # The static-analysis gate must stay in hosted CI too: either its own
        # job or a matrix leg named tidy (./ci.sh tidy).
        if "tidy" not in jobs and "tidy" not in presets:
            self.report(workflow, 1, "ci-workflow",
                        "workflow has no tidy leg (clang-tidy gate): add a `tidy` "
                        "job or matrix preset running ./ci.sh tidy")

    # --------------------------------------------------------------------

    def run(self) -> int:
        # A wrong --root must not silently pass the gate.
        if not (self.root / "src").is_dir():
            print(f"lint: no src/ under {self.root}; wrong --root?", file=sys.stderr)
            return 2
        self.check_pragma_once()
        self.check_no_rand()
        self.check_no_naked_new()
        self.check_no_float()
        self.check_require_throws()
        self.check_no_bare_catch()
        self.check_no_const_cast_top()
        self.check_no_raw_clock()
        self.check_no_using_namespace()
        self.check_no_search_alloc()
        self.check_no_raw_getenv()
        self.check_no_mutable_global()
        self.check_no_unordered_output()
        self.check_ci_workflow()
        # Stable output order regardless of rule execution order, so diffs
        # of lint output (and the fixture tests) are deterministic.
        self.violations.sort(key=lambda v: (str(v[0]), v[1], v[2], v[3]))
        for path, lineno, rule, message in self.violations:
            rel = path.relative_to(self.root)
            print(f"{rel}:{lineno}: [{rule}] {message}")
        if self.violations:
            print(f"lint: {len(self.violations)} violation(s)", file=sys.stderr)
            return 1
        print("lint: ok")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--files", nargs="+", type=Path, default=None,
                        metavar="PATH",
                        help="incremental mode: lint only these files (paths "
                             "relative to --root or absolute); directory-scoped "
                             "rules skip files outside the given set")
    args = parser.parse_args()
    return Linter(args.root.resolve(), only_files=args.files).run()


if __name__ == "__main__":
    sys.exit(main())
