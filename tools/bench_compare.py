#!/usr/bin/env python3
"""Deterministic work-counter regression gate.

Runs the table02 bench at a small, seed-pinned configuration with
MTS_METRICS=1 and compares the *work counters* the pipeline emits
(dijkstra relaxation effort, CH serving effort, LP pivots, Yen pruning)
against a checked-in baseline (BENCH_PR9.json).  These counters are
exact functions of the input — bit-identical across machines and thread
counts — so the comparison tolerance is zero: any drift means the
algorithms did different work, which is either an intended change
(re-baseline with --write-baseline) or a performance
regression/correctness bug worth catching.

Wall-clock is measured and *reported* alongside the counters, but never
gated — timing noise on shared CI runners would make a wall-clock gate
flaky, while counter drift is deterministic.

Counters deliberately NOT gated:
  * dijkstra.workspace_reuses / ch.workspace_reuses — the first search
    on each pool thread allocates instead of reusing, so the value
    depends on how the scheduler spreads tasks across threads.
  * dijkstra.runs and anything downstream of wall-clock.

Exit codes:
  0  counters match (or baseline written)
  1  drift, bad metrics, bench failure
  3  a gated counter is missing from the baseline or the run — the
     distinct code lets CI distinguish "schema out of date" (somebody
     added a counter without re-baselining) from real drift.

Wired into ctest as `bench_gate` (root CMakeLists.txt) and run by the
dev leg of ci.sh plus the hosted bench CI job.  Usage:

  python3 tools/bench_compare.py --bench build/bench/table02_boston_length \
      --baseline BENCH_PR9.json [--write-baseline] [--report BASE]

Standalone zero-gate mode (no bench run, no baseline): assert that the
named counters are zero in an already-written metrics JSON.  Used by the
ci.sh unloaded routed smoke to prove the overload machinery is inert when
nothing is overloaded — a counter that is absent from the file counts as
zero, since counters register lazily on first increment:

  python3 tools/bench_compare.py \
      --assert-zero routed.shed,routed.deadline_exceeded \
      --metrics-json build-dev/routed_obs_metrics.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

EXIT_DRIFT = 1
EXIT_MISSING_COUNTER = 3

# Same shape as the validate_trace workload but a different seed and two
# threads: large enough that every gated counter is exercised (Yen pruning
# included), small enough to stay a few seconds on a laptop.  All gated
# counters are thread-count invariant; MTS_THREADS=2 just keeps the run
# representative of parallel table cells.
BENCH_ENV = {
    "MTS_METRICS": "1",
    "MTS_TIMING": "0",
    "MTS_THREADS": "2",
    "MTS_SCALE": "0.3",
    "MTS_TRIALS": "4",
    "MTS_PATH_RANK": "40",
    "MTS_SEED": "11",
}

# Deterministic work counters under the +-0% gate.  Keep this list in sync
# with the baseline file; a mismatch exits with EXIT_MISSING_COUNTER and
# names every absent counter.
GATED_COUNTERS = [
    "dijkstra.edges_scanned",
    "dijkstra.nodes_settled",
    "ch.nodes_settled",
    "ch.queries",
    "ch.phast_runs",
    "ch.recustomizations",
    "cch.arcs_recomputed",
    "lp.pivots",
    "lp.solves",
    "yen.spurs_pruned",
]

# Reported next to the gate for context, never compared.
INFORMATIONAL_COUNTERS = [
    "dijkstra.runs",
    "dijkstra.workspace_reuses",
    "ch.workspace_reuses",
    "ch.sweep_relaxations",
    "ch.table_queries",
    "cch.queries",
    "yen.spur_searches",
    "yen.candidates_pushed",
]


class Reporter:
    """Tees report lines to stdout/stderr and an optional --report file."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def emit(self, message: str, err: bool = False) -> None:
        line = f"bench_compare: {message}"
        self.lines.append(line)
        print(line, file=sys.stderr if err else sys.stdout)

    def write(self, base: Path) -> None:
        base.parent.mkdir(parents=True, exist_ok=True)
        base.with_suffix(".txt").write_text("\n".join(self.lines) + "\n")


REPORT = Reporter()


def fail(message: str, code: int = EXIT_DRIFT, report_base: Path | None = None) -> None:
    REPORT.emit(f"FAIL: {message}", err=True)
    if report_base is not None:
        REPORT.write(report_base)
    sys.exit(code)


def run_bench(bench: Path, report_base: Path | None) -> tuple[dict, float]:
    """Runs the bench in a temp dir; returns (metrics JSON, wall seconds)."""
    with tempfile.TemporaryDirectory(prefix="mts_bench_compare_") as tmp:
        (Path(tmp) / "bench_results").mkdir()
        env = dict(os.environ)
        env.update(BENCH_ENV)
        start = time.monotonic()
        proc = subprocess.run([str(bench)], cwd=tmp, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                              text=True, timeout=900)
        wall = time.monotonic() - start
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            fail(f"bench exited with status {proc.returncode}", report_base=report_base)
        metrics_path = Path(tmp) / "bench_results" / "table02_metrics.json"
        if not metrics_path.is_file():
            fail("bench did not write table02_metrics.json (MTS_METRICS=1 ignored?)",
                 report_base=report_base)
        raw = metrics_path.read_text()
        try:
            metrics = json.loads(raw)
        except json.JSONDecodeError as err:
            fail(f"table02_metrics.json is not valid JSON: {err}", report_base=report_base)
        if report_base is not None:
            # Keep the raw metrics next to the report so a failing CI job can
            # upload both as artifacts.
            report_base.parent.mkdir(parents=True, exist_ok=True)
            Path(f"{report_base}_metrics.json").write_text(raw)
    return metrics, wall


def gated_values(counters: dict, report_base: Path | None) -> dict[str, int]:
    missing = [name for name in GATED_COUNTERS if name not in counters]
    if missing:
        fail(f"bench metrics missing gated counter(s): {', '.join(missing)} "
             f"(have: {', '.join(sorted(counters))})",
             code=EXIT_MISSING_COUNTER, report_base=report_base)
    return {name: counters[name] for name in GATED_COUNTERS}


def assert_zero(names: list[str], metrics_json: Path) -> int:
    """Standalone gate: every named counter must be 0 (or absent) in the file."""
    if not metrics_json.is_file():
        fail(f"metrics JSON not found: {metrics_json}")
    try:
        metrics = json.loads(metrics_json.read_text())
    except json.JSONDecodeError as err:
        fail(f"{metrics_json} is not valid JSON: {err}")
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        counters = {}
    nonzero = []
    for name in names:
        value = counters.get(name, 0)
        if value != 0:
            nonzero.append(f"{name} = {value}")
        else:
            REPORT.emit(f"ok    {name} = 0")
    if nonzero:
        fail(f"counters expected to be zero are not: {'; '.join(nonzero)} "
             f"({metrics_json})")
    REPORT.emit(f"zero-gate passed for {len(names)} counter(s)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=Path, default=None,
                        help="path to the table02 bench binary")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="checked-in baseline JSON (BENCH_PR9.json)")
    parser.add_argument("--assert-zero", type=str, default=None, metavar="NAMES",
                        help="comma-separated counters that must be zero in "
                             "--metrics-json; skips the bench/baseline flow")
    parser.add_argument("--metrics-json", type=Path, default=None,
                        help="already-written metrics JSON for --assert-zero")
    parser.add_argument("--write-baseline", "--update", dest="write_baseline",
                        action="store_true",
                        help="rewrite the baseline from this run instead of comparing")
    parser.add_argument("--report", type=Path, default=None, metavar="BASE",
                        help="also write BASE.txt (report lines) and "
                             "BASE_metrics.json (raw metrics) for CI artifacts")
    args = parser.parse_args()

    if args.assert_zero is not None:
        if args.metrics_json is None:
            parser.error("--assert-zero requires --metrics-json")
        names = [name for name in args.assert_zero.split(",") if name]
        if not names:
            parser.error("--assert-zero needs at least one counter name")
        return assert_zero(names, args.metrics_json)
    if args.bench is None or args.baseline is None:
        parser.error("--bench and --baseline are required (unless using --assert-zero)")

    bench = args.bench.resolve()
    if not bench.is_file():
        fail(f"bench binary not found: {bench}", report_base=args.report)

    metrics, wall = run_bench(bench, args.report)
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        fail("metrics JSON has no 'counters' object", report_base=args.report)
    current = gated_values(counters, args.report)

    REPORT.emit(f"bench wall-clock {wall:.2f}s (reported, not gated)")
    for name in INFORMATIONAL_COUNTERS:
        if name in counters:
            REPORT.emit(f"info  {name} = {counters[name]}")

    if args.write_baseline:
        baseline = {
            "_comment": "Deterministic work-counter baseline for tools/bench_compare.py "
                        "(PR 9 CH-backed query substrate).  Regenerate with "
                        "--write-baseline after an intentional algorithmic change.",
            "bench": "table02_boston_length",
            "env": BENCH_ENV,
            "counters": current,
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        REPORT.emit(f"baseline updated: {args.baseline}")
        if args.report is not None:
            REPORT.write(args.report)
        return 0

    if not args.baseline.is_file():
        fail(f"baseline not found: {args.baseline} (generate with --write-baseline)",
             report_base=args.report)
    baseline = json.loads(args.baseline.read_text())
    if baseline.get("env") != BENCH_ENV:
        fail("baseline env block does not match BENCH_ENV in this script; "
             "regenerate the baseline with --write-baseline", report_base=args.report)
    expected = baseline.get("counters", {})

    missing = [name for name in GATED_COUNTERS if name not in expected]
    if missing:
        fail(f"baseline missing gated counter(s): {', '.join(missing)}; "
             f"regenerate with --write-baseline",
             code=EXIT_MISSING_COUNTER, report_base=args.report)

    regressions = []
    for name in GATED_COUNTERS:
        if current[name] != expected[name]:
            delta = current[name] - expected[name]
            regressions.append(f"{name}: expected {expected[name]}, got {current[name]} "
                               f"({'+' if delta >= 0 else ''}{delta})")
        else:
            REPORT.emit(f"ok    {name} = {current[name]}")

    if regressions:
        for line in regressions:
            REPORT.emit(f"DRIFT {line}", err=True)
        fail("work counters drifted from the baseline (intended? rerun with "
             "--write-baseline)", report_base=args.report)

    REPORT.emit("ok")
    if args.report is not None:
        REPORT.write(args.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
