#!/usr/bin/env python3
"""Deterministic work-counter regression gate.

Runs the table02 bench at a small, seed-pinned configuration with
MTS_METRICS=1 and compares the *work counters* the pipeline emits
(dijkstra relaxation effort, LP pivots, Yen pruning) against a
checked-in baseline (BENCH_PR4.json).  These counters are exact
functions of the input — bit-identical across machines and thread
counts — so the comparison tolerance is zero: any drift means the
algorithms did different work, which is either an intended change
(re-baseline with --update) or a performance regression/correctness
bug worth catching.

Wall-clock is measured and *reported* alongside the counters, but never
gated — timing noise on shared CI runners would make a wall-clock gate
flaky, while counter drift is deterministic.

Counters deliberately NOT gated:
  * dijkstra.workspace_reuses — the first search on each pool thread
    allocates instead of reusing, so the value depends on how the
    scheduler spreads tasks across threads.
  * dijkstra.runs and anything downstream of wall-clock.

Wired into ctest as `bench_gate` (root CMakeLists.txt) and run by the
dev leg of ci.sh.  Usage:

  python3 tools/bench_compare.py --bench build/bench/table02_boston_length \
      --baseline BENCH_PR4.json [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# Same shape as the validate_trace workload but a different seed and two
# threads: large enough that every gated counter is exercised (Yen pruning
# included), small enough to stay a few seconds on a laptop.  All gated
# counters are thread-count invariant; MTS_THREADS=2 just keeps the run
# representative of parallel table cells.
BENCH_ENV = {
    "MTS_METRICS": "1",
    "MTS_TIMING": "0",
    "MTS_THREADS": "2",
    "MTS_SCALE": "0.3",
    "MTS_TRIALS": "4",
    "MTS_PATH_RANK": "40",
    "MTS_SEED": "11",
}

# Deterministic work counters under the +-0% gate.  Keep this list in sync
# with the baseline file; bench_compare fails if a gated counter is missing
# from either side.
GATED_COUNTERS = [
    "dijkstra.edges_scanned",
    "dijkstra.nodes_settled",
    "lp.pivots",
    "lp.solves",
    "yen.spurs_pruned",
]

# Reported next to the gate for context, never compared.
INFORMATIONAL_COUNTERS = [
    "dijkstra.runs",
    "dijkstra.workspace_reuses",
    "yen.spur_searches",
    "yen.candidates_pushed",
]


def fail(message: str) -> None:
    print(f"bench_compare: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench: Path) -> tuple[dict, float]:
    """Runs the bench in a temp dir; returns (metrics JSON, wall seconds)."""
    with tempfile.TemporaryDirectory(prefix="mts_bench_compare_") as tmp:
        (Path(tmp) / "bench_results").mkdir()
        env = dict(os.environ)
        env.update(BENCH_ENV)
        start = time.monotonic()
        proc = subprocess.run([str(bench)], cwd=tmp, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                              text=True, timeout=900)
        wall = time.monotonic() - start
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            fail(f"bench exited with status {proc.returncode}")
        metrics_path = Path(tmp) / "bench_results" / "table02_metrics.json"
        if not metrics_path.is_file():
            fail("bench did not write table02_metrics.json (MTS_METRICS=1 ignored?)")
        try:
            metrics = json.loads(metrics_path.read_text())
        except json.JSONDecodeError as err:
            fail(f"table02_metrics.json is not valid JSON: {err}")
    return metrics, wall


def gated_values(counters: dict) -> dict[str, int]:
    values = {}
    for name in GATED_COUNTERS:
        if name not in counters:
            fail(f"bench metrics missing gated counter {name!r} "
                 f"(have: {', '.join(sorted(counters))})")
        values[name] = counters[name]
    return values


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=Path, required=True,
                        help="path to the table02 bench binary")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="checked-in baseline JSON (BENCH_PR4.json)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead of comparing")
    args = parser.parse_args()

    bench = args.bench.resolve()
    if not bench.is_file():
        fail(f"bench binary not found: {bench}")

    metrics, wall = run_bench(bench)
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        fail("metrics JSON has no 'counters' object")
    current = gated_values(counters)

    print(f"bench_compare: bench wall-clock {wall:.2f}s (reported, not gated)")
    for name in INFORMATIONAL_COUNTERS:
        if name in counters:
            print(f"bench_compare: info  {name} = {counters[name]}")

    if args.update:
        baseline = {
            "_comment": "Deterministic work-counter baseline for tools/bench_compare.py "
                        "(PR 4 goal-directed search engine).  Regenerate with --update "
                        "after an intentional algorithmic change.",
            "bench": "table02_boston_length",
            "env": BENCH_ENV,
            "counters": current,
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"bench_compare: baseline updated: {args.baseline}")
        return 0

    if not args.baseline.is_file():
        fail(f"baseline not found: {args.baseline} (generate with --update)")
    baseline = json.loads(args.baseline.read_text())
    if baseline.get("env") != BENCH_ENV:
        fail("baseline env block does not match BENCH_ENV in this script; "
             "regenerate the baseline with --update")
    expected = baseline.get("counters", {})

    regressions = []
    for name in GATED_COUNTERS:
        if name not in expected:
            fail(f"baseline missing gated counter {name!r}; regenerate with --update")
        if current[name] != expected[name]:
            delta = current[name] - expected[name]
            regressions.append(f"{name}: expected {expected[name]}, got {current[name]} "
                               f"({'+' if delta >= 0 else ''}{delta})")
        else:
            print(f"bench_compare: ok    {name} = {current[name]}")

    if regressions:
        for line in regressions:
            print(f"bench_compare: DRIFT {line}", file=sys.stderr)
        fail("work counters drifted from BENCH_PR4.json (intended? rerun with --update)")

    print("bench_compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
