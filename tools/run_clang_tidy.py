#!/usr/bin/env python3
"""clang-tidy gate: fail only on findings not in the checked-in baseline.

Runs clang-tidy (config: the repo's .clang-tidy) over every library TU in a
compile_commands.json build tree, in parallel, and compares the findings
against tools/clang_tidy_baseline.txt.  A finding is keyed as
`path [check-name]` — line numbers are deliberately not part of the key so
unrelated edits cannot churn the baseline.

Exit codes:
  0   gate passed (no findings outside the baseline)
  1   new findings (printed, and written to --report if given)
  2   infrastructure error (bad build dir, clang-tidy crashed, ...)
  77  skipped: no clang-tidy on this machine (ctest SKIP_RETURN_CODE)

Workflow:
  * CI / ctest entry `tidy`:  run_clang_tidy.py --build <dir>
  * accept a grandfathered finding:  --update-baseline (then commit the
    file; the PR review owns the justification)
  * prove the gate bites:  --self-test compiles a TU with a deliberate
    bugprone-use-after-move and asserts the gate fails on it (runs by
    default before the repo scan; it is cheap and guards against a
    misconfigured .clang-tidy silently passing everything)
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

SKIP_EXIT = 77

# Newest first; plain `clang-tidy` wins so an explicit PATH choice is obeyed.
CANDIDATE_NAMES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(21, 13, -1)]

DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<checks>[A-Za-z0-9.,_-]+)\]$")


def find_clang_tidy() -> str | None:
    override = os.environ.get("CLANG_TIDY")
    if override:
        return override if shutil.which(override) else None
    for name in CANDIDATE_NAMES:
        if shutil.which(name):
            return name
    return None


class Finding:
    """One diagnostic, keyed for baseline comparison as `path [check]`."""

    def __init__(self, path: str, line: int, check: str, message: str) -> None:
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def key(self) -> str:
        return f"{self.path} [{self.check}]"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def parse_output(stdout: str, root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for raw_line in stdout.splitlines():
        match = DIAG_RE.match(raw_line.strip())
        if not match:
            continue
        path = Path(match.group("path"))
        if not path.is_absolute():
            path = (root / path).resolve()
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            continue  # system header or generated file outside the repo
        for check in match.group("checks").split(","):
            findings.append(Finding(rel, int(match.group("line")), check,
                                    match.group("message")))
    return findings


def run_one(tidy: str, build_dir: Path, source: str, root: Path) -> tuple[list[Finding], str]:
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", source],
        capture_output=True, text=True, check=False)
    # clang-tidy exits 1 when it emits warnings; only treat hard crashes /
    # config errors (no parseable output, nonzero exit) as infrastructure.
    findings = parse_output(proc.stdout, root)
    error = ""
    if proc.returncode != 0 and not findings:
        error = f"{source}: clang-tidy exit {proc.returncode}\n{proc.stderr.strip()}"
    return findings, error


def library_sources(build_dir: Path, root: Path) -> list[str]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        raise RuntimeError(
            f"{db_path} not found — configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON "
            f"(the CMake presets set it)")
    entries = json.loads(db_path.read_text())
    sources: list[str] = []
    lib_root = (root / "src").resolve()
    for entry in entries:
        file_path = Path(entry["file"])
        if not file_path.is_absolute():
            file_path = Path(entry["directory"]) / file_path
        file_path = file_path.resolve()
        if lib_root in file_path.parents:
            sources.append(str(file_path))
    return sorted(set(sources))


def load_baseline(path: Path) -> set[str]:
    if not path.is_file():
        return set()
    keys: set[str] = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


BASELINE_HEADER = """\
# clang-tidy baseline: grandfathered findings the `tidy` gate tolerates.
# One `path [check-name]` key per line; regenerate with
#   tools/run_clang_tidy.py --build <dir> --update-baseline
# Shrinking this file is always welcome; growing it needs a review-approved
# justification in the PR that grows it.
"""


def write_baseline(path: Path, findings: list[Finding]) -> None:
    keys = sorted({f.key() for f in findings})
    path.write_text(BASELINE_HEADER + "".join(k + "\n" for k in keys))


def self_test(tidy: str, root: Path) -> None:
    """A deliberate bugprone finding must fail the gate machinery."""
    snippet = (
        "#include <string>\n"
        "#include <utility>\n"
        "int main() {\n"
        "  std::string name = \"mts\";\n"
        "  std::string moved = std::move(name);\n"
        "  return static_cast<int>(name.size() + moved.size());\n"
        "}\n")
    with tempfile.TemporaryDirectory(prefix="mts-tidy-selftest-") as tmp:
        tmp_path = Path(tmp)
        (tmp_path / "use_after_move.cpp").write_text(snippet)
        shutil.copy(root / ".clang-tidy", tmp_path / ".clang-tidy")
        (tmp_path / "compile_commands.json").write_text(json.dumps([{
            "directory": str(tmp_path),
            "command": "c++ -std=c++20 -c use_after_move.cpp",
            "file": str(tmp_path / "use_after_move.cpp"),
        }]))
        findings, error = run_one(tidy, tmp_path, str(tmp_path / "use_after_move.cpp"),
                                  tmp_path)
        if error:
            raise RuntimeError(f"self-test infrastructure failure: {error}")
        if not any(f.check == "bugprone-use-after-move" for f in findings):
            raise RuntimeError(
                "self-test FAILED: the deliberate bugprone-use-after-move was not "
                "reported — the gate would silently pass real bugs "
                f"(got: {[f.check for f in findings] or 'no findings'})")
    print("tidy: self-test ok (deliberate bugprone finding is caught)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", type=Path, required=True,
                        help="build tree containing compile_commands.json")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: tools/clang_tidy_baseline.txt)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("--report", type=Path, default=None,
                        help="write the full finding list here (CI failure artifact)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--self-test", action="store_true",
                        help="only run the deliberate-finding self-test")
    parser.add_argument("--no-self-test", action="store_true",
                        help="skip the self-test before the repo scan")
    args = parser.parse_args()

    root = args.root.resolve()
    baseline_path = args.baseline or root / "tools" / "clang_tidy_baseline.txt"

    tidy = find_clang_tidy()
    if tidy is None:
        print("tidy: skipped — no clang-tidy on PATH (set CLANG_TIDY to override); "
              "the hosted CI tidy job is the authoritative gate", file=sys.stderr)
        return SKIP_EXIT

    try:
        if not args.no_self_test:
            self_test(tidy, root)
        if args.self_test:
            return 0

        sources = library_sources(args.build.resolve(), root)
        if not sources:
            raise RuntimeError("no src/ translation units in compile_commands.json")
        print(f"tidy: {tidy} over {len(sources)} TUs, {args.jobs} jobs")

        all_findings: list[Finding] = []
        errors: list[str] = []
        with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
            futures = [pool.submit(run_one, tidy, args.build.resolve(), s, root)
                       for s in sources]
            for future in concurrent.futures.as_completed(futures):
                findings, error = future.result()
                all_findings.extend(findings)
                if error:
                    errors.append(error)
        if errors:
            print("\n".join(errors), file=sys.stderr)
            return 2
    except RuntimeError as err:
        print(f"tidy: {err}", file=sys.stderr)
        return 2

    # The same (path, check) pair can fire on many lines; report each line
    # but gate on the deduplicated key.
    all_findings.sort(key=lambda f: (f.path, f.line, f.check))
    if args.update_baseline:
        write_baseline(baseline_path, all_findings)
        print(f"tidy: baseline updated with {len({f.key() for f in all_findings})} "
              f"key(s) -> {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    new = [f for f in all_findings if f.key() not in baseline]
    stale = baseline - {f.key() for f in all_findings}

    if args.report:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text("".join(f.render() + "\n" for f in all_findings))

    for finding in new:
        print(finding.render())
    if stale:
        print(f"tidy: note: {len(stale)} baseline key(s) no longer fire — "
              f"consider --update-baseline to shrink the file", file=sys.stderr)
    if new:
        print(f"tidy: {len(new)} finding(s) not in baseline "
              f"({len(all_findings)} total, baseline {len(baseline)})", file=sys.stderr)
        return 1
    print(f"tidy: ok ({len(all_findings)} finding(s), all baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
