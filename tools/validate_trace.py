#!/usr/bin/env python3
"""End-to-end trace validation: run a small instrumented bench and check
the emitted observability files.

Runs the table02 bench binary in a temporary directory with MTS_TRACE=1
at a tiny scale, then asserts:

  1. bench_results/table02_trace.json validates against
     tools/trace_schema.json (Chrome trace_event complete-event format,
     the shape chrome://tracing and Perfetto require);
  2. bench_results/table02_metrics.json carries the pipeline counters the
     instrumentation layer promises (yen/lp/oracle) and — because the run
     forces MTS_THREADS=4 — the pool.queue_wait_s histogram;
  3. trace events nest sanely: every duration is non-negative and at
     least one event exists per worker tid.

Wired into ctest as `validate_trace` (root CMakeLists.txt) and run by
the dev leg of ci.sh.  Usage:

  python3 tools/validate_trace.py --bench build/bench/table02_boston_length
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

# Small but non-trivial: enough trials for the attack loop, Yen, the LP,
# and the oracle to all fire, and >1 thread so the pool queue histogram
# has samples.  The workload must stay large enough that pool workers wake
# before the calling thread drains the whole job (the goal-directed spur
# engine made the old rank-8 run finish in under a worker wakeup), or the
# queue-wait check below turns flaky.  Seed-pinned so failures reproduce.
BENCH_ENV = {
    "MTS_TRACE": "1",
    "MTS_METRICS": "1",
    "MTS_THREADS": "4",
    "MTS_SCALE": "0.3",
    "MTS_TRIALS": "4",
    "MTS_PATH_RANK": "40",
    "MTS_SEED": "7",
}

REQUIRED_COUNTERS = [
    "yen.candidates_pushed",
    "yen.queries",
    "lp.pivots",
    "lp.solves",
    "oracle.calls",
    "dijkstra.runs",
    "attack.rounds",
    "exp.cells_run",
    "pool.tasks_executed",
]


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_schema(value, schema, path: str = "$") -> None:
    """Validates `value` against the JSON-schema subset used by
    tools/trace_schema.json: type, required, properties, items, enum,
    minimum.  Fails with the JSON path of the first violation."""
    if "enum" in schema:
        if value not in schema["enum"]:
            fail(f"{path}: {value!r} not in enum {schema['enum']}")
        return
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(value, dict):
            fail(f"{path}: expected object, got {type(value).__name__}")
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate_schema(value[key], sub, f"{path}.{key}")
    elif expected == "array":
        if not isinstance(value, list):
            fail(f"{path}: expected array, got {type(value).__name__}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate_schema(item, schema["items"], f"{path}[{i}]")
    elif expected == "string":
        if not isinstance(value, str):
            fail(f"{path}: expected string, got {type(value).__name__}")
    elif expected == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{path}: expected integer, got {type(value).__name__}")
    elif expected == "number":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"{path}: expected number, got {type(value).__name__}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            fail(f"{path}: {value} below minimum {schema['minimum']}")


def check_trace(trace_path: Path, schema: dict) -> None:
    try:
        trace = json.loads(trace_path.read_text())
    except json.JSONDecodeError as err:
        fail(f"{trace_path.name} is not valid JSON: {err}")
    validate_schema(trace, schema)
    events = trace["traceEvents"]
    if not events:
        fail("trace has zero events despite MTS_TRACE=1")
    tids = {event["tid"] for event in events}
    names = {event["name"] for event in events}
    # Request spans (cat "mts.request", emitted by `mts routed`) carry the
    # per-request work counters as args; phase events (cat "mts") omit the
    # args object entirely to keep pre-span traces byte-identical.
    spans = [event for event in events if event["cat"] == "mts.request"]
    for i, span in enumerate(spans):
        args = span.get("args")
        if not isinstance(args, dict):
            fail(f"request span [{i}] ({span['name']!r}) has no args object")
        for key in ("id", "edges_scanned", "nodes_settled"):
            if key not in args:
                fail(f"request span [{i}] ({span['name']!r}) missing args.{key}")
    print(f"validate_trace: {len(events)} events ({len(spans)} request spans), "
          f"{len(tids)} tids, {len(names)} distinct phases ({', '.join(sorted(names))})")
    for expected in ("attack", "oracle", "dijkstra", "yen"):
        if expected not in names:
            fail(f"expected a {expected!r} phase in the trace, got {sorted(names)}")


def check_metrics(metrics_path: Path) -> None:
    try:
        metrics = json.loads(metrics_path.read_text())
    except json.JSONDecodeError as err:
        fail(f"{metrics_path.name} is not valid JSON: {err}")
    for key in ("run", "counters", "histograms", "phases"):
        if key not in metrics:
            fail(f"metrics JSON missing top-level {key!r} block")
    run = metrics["run"]
    if run.get("threads_effective") != 4:
        fail(f"run block reports threads_effective={run.get('threads_effective')}, "
             f"expected 4 (MTS_THREADS=4)")
    counters = metrics["counters"]
    for name in REQUIRED_COUNTERS:
        if counters.get(name, 0) <= 0:
            fail(f"counter {name!r} is missing or zero: {counters.get(name)}")
    hist = metrics["histograms"].get("pool.queue_wait_s")
    if hist is None or hist.get("count", 0) <= 0:
        fail("pool.queue_wait_s histogram has no samples despite MTS_THREADS=4")
    phases = {phase["path"] for phase in metrics["phases"]}
    if "cell/attack/oracle/dijkstra" not in phases:
        fail(f"expected hierarchical phase cell/attack/oracle/dijkstra, got {sorted(phases)}")
    print(f"validate_trace: {len(counters)} counters, "
          f"{len(metrics['histograms'])} histograms, {len(phases)} phases ok")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=Path, required=True,
                        help="path to the table02 bench binary")
    parser.add_argument("--schema", type=Path,
                        default=Path(__file__).resolve().parent / "trace_schema.json",
                        help="trace schema (default: tools/trace_schema.json)")
    args = parser.parse_args()

    bench = args.bench.resolve()
    if not bench.is_file():
        fail(f"bench binary not found: {bench}")
    schema = json.loads(args.schema.read_text())

    # The bench writes bench_results/ relative to its cwd; run in a temp
    # dir so repeated invocations and real result trees never collide.
    with tempfile.TemporaryDirectory(prefix="mts_validate_trace_") as tmp:
        (Path(tmp) / "bench_results").mkdir()
        env = dict(os.environ)
        env.update(BENCH_ENV)
        proc = subprocess.run([str(bench)], cwd=tmp, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                              text=True, timeout=600)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            fail(f"bench exited with status {proc.returncode}")
        results = Path(tmp) / "bench_results"
        trace_path = results / "table02_trace.json"
        metrics_path = results / "table02_metrics.json"
        if not trace_path.is_file():
            fail("bench did not write table02_trace.json")
        if not metrics_path.is_file():
            fail("bench did not write table02_metrics.json")
        check_trace(trace_path, schema)
        check_metrics(metrics_path)

    print("validate_trace: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
